package analyzers

import (
	"go/ast"
	"go/types"

	"blindfl/internal/analyzers/analysis"
)

// Bigval flags two mutable-aliasing footguns in the Paillier hot paths:
//
//  1. Copying a math/big value (big.Int, big.Float, big.Rat) or a
//     paillier.Ciphertext by value. A big.Int's limb slice is shared by the
//     copy, so in-place arithmetic on either corrupts the other — the
//     classic silent-corruption bug in code that mutates ciphertext
//     residues in place. Ciphertext is a one-pointer struct, so a value
//     copy aliases C the same way.
//
//  2. Mutating values obtained from the shared dot-table cache accessors
//     (hetensor's tableCacheGet/cachedTables). Cached *paillier.DotTables
//     are shared across every kernel invocation of the process and must
//     stay read-only; the only methods callable on a cache result are the
//     read-only ones (Dot, Window, Bytes).
var Bigval = &analysis.Analyzer{
	Name: "bigval",
	Doc: "flags big.Int/paillier.Ciphertext value copies and mutation of shared dot-table cache results\n\n" +
		"An initialized big.Int shares its limb storage with any value copy, so copies corrupt " +
		"each other under in-place arithmetic; dot-table cache entries are process-shared and read-only.",
	Run: runBigval,
}

// cacheAccessors are the functions whose results are shared read-only
// dot-table state (part 2 above).
var cacheAccessors = map[string]bool{
	"tableCacheGet": true,
	"cachedTables":  true,
}

// tableReadOnlyMethods are the methods a cache result may call.
var tableReadOnlyMethods = map[string]bool{
	"Dot":    true,
	"Window": true,
	"Bytes":  true,
}

func runBigval(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkBigSignature(pass, n.Recv, n.Type)
				if n.Body != nil {
					checkCacheMutation(pass, n.Body)
				}
			case *ast.FuncLit:
				checkBigSignature(pass, nil, n.Type)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkBigCopy(pass, rhs, "assignment copies")
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkBigCopy(pass, v, "assignment copies")
				}
			case *ast.CallExpr:
				if isConv(pass, n) {
					break
				}
				for _, arg := range n.Args {
					checkBigCopy(pass, arg, "call passes")
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					checkBigCopy(pass, r, "return copies")
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						el = kv.Value
					}
					checkBigCopy(pass, el, "composite literal copies")
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := pass.TypeOf(n.Value); containsBigValue(t, nil) {
						pass.Reportf(n.Value.Pos(), "range clause copies %s by value; range over pointers instead", typeLabel(t))
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkBigSignature flags by-value big parameters, results and receivers.
func checkBigSignature(pass *analysis.Pass, recv *ast.FieldList, ft *ast.FuncType) {
	lists := []*ast.FieldList{recv, ft.Params, ft.Results}
	for _, fl := range lists {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			t := pass.TypeOf(field.Type)
			if containsBigValue(t, nil) {
				pass.Reportf(field.Type.Pos(), "signature passes %s by value; use a pointer (an initialized big.Int must never be copied)", typeLabel(t))
			}
		}
	}
}

// checkBigCopy flags expr when evaluating it copies an existing big value.
func checkBigCopy(pass *analysis.Pass, expr ast.Expr, how string) {
	// Type expressions (new(big.Int), the big.Int in a conversion) denote
	// types, not copied values.
	if tv, ok := pass.TypesInfo.Types[expr]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return
	}
	t := pass.TypeOf(expr)
	if !containsBigValue(t, nil) {
		return
	}
	if freshValue(pass, expr) {
		return
	}
	pass.Reportf(expr.Pos(), "%s %s by value; use a pointer (an initialized big.Int must never be copied)", how, typeLabel(t))
}

// freshValue reports whether expr denotes a brand-new value (safe to bind)
// rather than a copy of existing storage.
func freshValue(pass *analysis.Pass, expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.ParenExpr:
		return freshValue(pass, e.X)
	case *ast.CompositeLit, *ast.BasicLit, *ast.FuncLit:
		return true
	case *ast.CallExpr:
		if isConv(pass, e) && len(e.Args) == 1 {
			return freshValue(pass, e.Args[0])
		}
		// A call result is a new value; if a repo function returns big.Int
		// by value, its signature is flagged at the declaration instead.
		return true
	}
	return false
}

// containsBigValue reports whether t embeds a math/big value or a
// paillier.Ciphertext anywhere by value (not behind a pointer, slice or map).
func containsBigValue(t types.Type, seen map[types.Type]bool) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if seen[t] {
		return false
	}
	if pkg, name := namedType(t); name != "" {
		if fromPackage(pkg, "big") && (name == "Int" || name == "Float" || name == "Rat") {
			return true
		}
		if fromPackage(pkg, "paillier") && name == "Ciphertext" {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		if seen == nil {
			seen = map[types.Type]bool{}
		}
		seen[t] = true
		for i := 0; i < u.NumFields(); i++ {
			if containsBigValue(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		if seen == nil {
			seen = map[types.Type]bool{}
		}
		seen[t] = true
		return containsBigValue(u.Elem(), seen)
	}
	return false
}

// typeLabel renders t compactly for diagnostics.
func typeLabel(t types.Type) string {
	if t == nil {
		return "value"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// checkCacheMutation flags writes through, and non-read-only method calls
// on, variables bound to dot-table cache accessor results within one
// function body.
func checkCacheMutation(pass *analysis.Pass, body *ast.BlockStmt) {
	cached := map[types.Object]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 {
			return true
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok || !cacheAccessors[calleeName(call)] {
			return true
		}
		for _, lhs := range asg.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					cached[obj] = calleeName(call)
				}
			}
		}
		return true
	})
	if len(cached) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, chained := rootIdent(lhs); chained {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						if acc, ok := cached[obj]; ok {
							pass.Reportf(lhs.Pos(), "writes into the result of %s; cached DotTables are shared and read-only", acc)
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if id, chained := rootIdent(n.X); chained {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					if acc, ok := cached[obj]; ok {
						pass.Reportf(n.Pos(), "writes into the result of %s; cached DotTables are shared and read-only", acc)
					}
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || tableReadOnlyMethods[sel.Sel.Name] {
				return true
			}
			// Method call on a cache-derived value (v.M() or v[i].M()).
			if _, isMethod := pass.TypesInfo.Selections[sel]; !isMethod {
				return true
			}
			id, _ := rootIdent(sel.X)
			if id == nil {
				return true
			}
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				if acc, ok := cached[obj]; ok {
					pass.Reportf(n.Pos(), "calls non-read-only method %s on the result of %s; cached DotTables are shared and read-only (allowed: Dot, Window, Bytes)", sel.Sel.Name, acc)
				}
			}
		}
		return true
	})
}

// rootIdent unwraps selector/index/star/paren chains to the base
// identifier; chained reports whether any unwrapping happened (x.f, x[i],
// *x — i.e. the expression reaches through the variable rather than
// rebinding it).
func rootIdent(e ast.Expr) (id *ast.Ident, chained bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, chained
		case *ast.SelectorExpr:
			e, chained = x.X, true
		case *ast.IndexExpr:
			e, chained = x.X, true
		case *ast.StarExpr:
			e, chained = x.X, true
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, chained
		}
	}
}
