package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"blindfl/internal/analyzers/analysis"
)

// Lockguard enforces "// guarded by mu" doc comments: every same-package
// access to a field declared guarded must happen with the named mutex held.
// The check is lexical — within one function body, an access is considered
// protected when a <root>.mu.Lock() precedes it with no intervening
// non-deferred <root>.mu.Unlock() (a deferred Unlock holds until return).
// Functions whose names end in "Locked" follow the repo convention of being
// called with the lock already held and are exempt.
//
// Two comment shapes declare a guard:
//
//	// All fields are guarded by mu.        (var doc — every field guarded)
//	var tableCache struct { mu sync.Mutex; ... }
//
//	type cache struct {
//		mu      sync.Mutex
//		entries map[K]V // guarded by mu    (field comment — that field only)
//	}
var Lockguard = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "flags access to \"guarded by mu\" fields without the mutex lexically held\n\n" +
		"Fields documented as guarded by a mutex must only be touched between Lock and Unlock " +
		"on the same root expression (deferred Unlock counts as held-to-return); " +
		"functions named *Locked are assumed to run under the lock.",
	Run: runLockguard,
}

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// varGuard guards every field of one package-level struct var.
type varGuard struct {
	obj   types.Object // the guarded var
	mutex string       // mutex field name within it
}

// fieldGuard guards one field of one named struct type.
type fieldGuard struct {
	named *types.TypeName // defining type
	field string          // guarded field
	mutex string          // mutex field name on the same struct
}

func runLockguard(pass *analysis.Pass) (interface{}, error) {
	var vars []varGuard
	var fields []fieldGuard
	for _, f := range pass.Files {
		collectGuards(pass, f, &vars, &fields)
	}
	if len(vars) == 0 && len(fields) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			checkGuardedBody(pass, fd.Body, vars, fields)
		}
	}
	return nil, nil
}

// collectGuards harvests guard declarations from var docs and struct field
// comments. A captured mutex name only counts when the struct really has a
// field of that name, so prose like "guarded by a gcd check" cannot match.
func collectGuards(pass *analysis.Pass, f *ast.File, vars *[]varGuard, fields *[]fieldGuard) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GenDecl:
			if n.Tok != token.VAR {
				return true
			}
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				mu := guardName(n.Doc, vs.Doc, vs.Comment)
				if mu == "" {
					continue
				}
				for _, name := range vs.Names {
					obj := pass.TypesInfo.ObjectOf(name)
					if obj != nil && structHasField(obj.Type(), mu) {
						*vars = append(*vars, varGuard{obj: obj, mutex: mu})
					}
				}
			}
		case *ast.TypeSpec:
			st, ok := n.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, _ := pass.TypesInfo.ObjectOf(n.Name).(*types.TypeName)
			if tn == nil {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardName(field.Doc, field.Comment)
				if mu == "" || !structHasField(tn.Type(), mu) {
					continue
				}
				for _, name := range field.Names {
					if name.Name == mu {
						continue
					}
					*fields = append(*fields, fieldGuard{named: tn, field: name.Name, mutex: mu})
				}
			}
		}
		return true
	})
}

// guardName extracts the mutex name from the first comment group matching
// the "guarded by <name>" convention.
func guardName(groups ...*ast.CommentGroup) string {
	for _, g := range groups {
		if g == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(g.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// structHasField reports whether t's underlying struct has a field named
// name (the candidate mutex).
func structHasField(t types.Type, name string) bool {
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}

// lockEvent is one Lock/Unlock call or one guarded access, ordered by
// position for the lexical held-lock scan.
type lockEvent struct {
	pos      token.Pos
	kind     int    // 0 lock, 1 unlock, 2 deferred unlock, 3 access
	root     string // rendering of the expression owning the mutex
	mutex    string
	what     string // for accesses: diagnostic detail
	analyzer string
}

// checkGuardedBody runs the lexical lock-state scan over one function body.
func checkGuardedBody(pass *analysis.Pass, body *ast.BlockStmt, vars []varGuard, fields []fieldGuard) {
	var events []lockEvent
	record := func(e lockEvent) { events = append(events, e) }

	var walk func(n ast.Node, deferred bool)
	walk = func(n ast.Node, deferred bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				walk(n.Call, true)
				return false
			case *ast.CallExpr:
				if root, mu, kind, ok := lockCall(n, deferred); ok {
					record(lockEvent{pos: n.Pos(), kind: kind, root: root, mutex: mu})
					return true
				}
			case *ast.SelectorExpr:
				classifyAccess(pass, n, vars, fields, record)
			}
			return true
		})
	}
	walk(body, false)

	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	held := map[string]bool{} // "root.mutex" → held
	for _, e := range events {
		key := e.root + "." + e.mutex
		switch e.kind {
		case 0:
			held[key] = true
		case 1:
			held[key] = false
		case 2:
			// deferred Unlock releases at return, not here
		case 3:
			if !held[key] {
				pass.Reportf(e.pos, "%s is accessed without %s held (declared \"guarded by %s\"); "+
					"hold the lock or move the access into a *Locked helper", e.what, key, e.mutex)
			}
		}
	}
}

// lockCall decodes <root>.<mu>.Lock() / Unlock() calls; kind is 0 for Lock,
// 1 for Unlock, 2 for a deferred Unlock.
func lockCall(call *ast.CallExpr, deferred bool) (root, mutex string, kind int, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = 0
	case "Unlock", "RUnlock":
		kind = 1
		if deferred {
			kind = 2
		}
	default:
		return "", "", 0, false
	}
	muSel, isSel := sel.X.(*ast.SelectorExpr)
	if !isSel {
		// Bare mu.Lock(): mutex is a plain var; root is empty.
		if id, isID := sel.X.(*ast.Ident); isID {
			return "", id.Name, kind, true
		}
		return "", "", 0, false
	}
	return exprString(muSel.X), muSel.Sel.Name, kind, true
}

// classifyAccess records sel as a guarded access when it reaches a guarded
// field (by var identity or by struct type+field name).
func classifyAccess(pass *analysis.Pass, sel *ast.SelectorExpr, vars []varGuard, fields []fieldGuard, record func(lockEvent)) {
	fieldName := sel.Sel.Name
	// Var-level guards: tableCache.<anything but the mutex itself>.
	if id, ok := sel.X.(*ast.Ident); ok {
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			for _, g := range vars {
				if g.obj == obj && fieldName != g.mutex {
					record(lockEvent{
						pos: sel.Pos(), kind: 3, root: exprString(sel.X), mutex: g.mutex,
						what: exprString(sel.X) + "." + fieldName,
					})
					return
				}
			}
		}
	}
	// Field-level guards: x.field where x's type declares field guarded.
	selInfo, ok := pass.TypesInfo.Selections[sel]
	if !ok || selInfo.Kind() != types.FieldVal {
		return
	}
	recv, ok := types.Unalias(deref(selInfo.Recv())).(*types.Named)
	if !ok {
		return
	}
	for _, g := range fields {
		if g.field == fieldName && recv.Obj() == g.named {
			record(lockEvent{
				pos: sel.Pos(), kind: 3, root: exprString(sel.X), mutex: g.mutex,
				what: exprString(sel.X) + "." + fieldName,
			})
			return
		}
	}
}

// exprString renders simple ident/selector/star/index chains for lock-state
// keying; unrenderable expressions collapse to "?" (never matching a Lock).
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return exprString(x.X)
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[]"
	}
	return "?"
}
