// Package analysis is a minimal, API-compatible subset of
// golang.org/x/tools/go/analysis, vendored as a local shim so the repo's
// custom analyzers build in offline environments where the x/tools module
// is unavailable. Analyzers written against this package use the same
// Analyzer/Pass/Diagnostic shapes as the upstream framework, so they can be
// moved onto golang.org/x/tools/go/analysis (and its multichecker or
// unitchecker drivers) without source changes beyond the import path.
//
// Only the surface the blindfl-vet suite needs is provided: no Facts, no
// Requires-based dependency scheduling, no SuggestedFixes. Drivers (the
// cmd/blindfl-vet multichecker and internal/analyzers/analysistest) build a
// Pass per package and invoke Run directly.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check: a name, documentation, and a Run function
// executed once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, command-line toggles and
	// //blindfl:allow directives. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: a one-line summary, a blank line,
	// then details.
	Doc string

	// Run applies the analyzer to a package. It may return a result (unused
	// by the blindfl-vet drivers) and an error for abnormal failures;
	// findings are delivered through Pass.Report, not the error.
	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer run with a single type-checked package and a
// sink for its diagnostics.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. Drivers install a function that applies
	// //blindfl:allow suppression before recording or printing.
	Report func(Diagnostic)
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the static type of e, or nil when the type checker recorded
// none (e.g. after an upstream type error).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t, ok := p.TypesInfo.Types[e]; ok {
		return t.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}
