package analyzers

import (
	"go/ast"

	"blindfl/internal/analyzers/analysis"
)

// Teardown enforces the transport lifecycle discipline PR 2 earned the hard
// way, in non-test code:
//
//  1. Direct Close() on a transport.Conn belongs in the approved lifecycle
//     helpers — RunParties/RunGroup (which close both/all conns on the
//     first party error so survivors unblock with ErrClosed instead of
//     hanging) or a Close method that is itself a close-once wrapper.
//     Ad-hoc closes re-create the double-close panic and the one-sided
//     teardown that left the peer blocked in Recv forever.
//
//  2. A goroutine that calls Send/Recv and discards the error has no error
//     path at all: when the conn breaks, the failure vanishes and whoever
//     waits on the goroutine's results hangs. Errors must be surfaced
//     (error channel, captured variable) or the conn closed/drained on the
//     failure path.
var Teardown = &analysis.Analyzer{
	Name: "teardown",
	Doc: "flags ad-hoc transport.Conn closes and goroutines that discard Send/Recv errors\n\n" +
		"Conn lifecycles are owned by RunParties/RunGroup-style helpers (close once, close all on " +
		"first error); ad-hoc closes and swallowed transport errors re-create the PR 2 " +
		"double-close panic and one-sided-failure hangs.",
	Run: runTeardown,
}

// teardownOwners are function names allowed to close conns directly: the
// party-runner helpers — RunParties/RunGroup and the shard-root runner
// RunShardRoot, which owns every feature-party conn and shard link of a
// sharded run and closes them all on the first error so one lost shard
// surfaces as one typed failure instead of k cascades — any method literally
// named Close (a lifecycle wrapper taking ownership of its conns, e.g.
// protocol.Group.Close), and CloseSession (protocol.Group's sanctioned
// retire-one-session path, which marks the session lost before closing so
// the group's bookkeeping and the close cannot diverge).
var teardownOwners = map[string]bool{
	"RunParties":   true,
	"RunGroup":     true,
	"RunShardRoot": true,
	"Close":        true,
	"CloseSession": true,
}

func runTeardown(pass *analysis.Pass) (interface{}, error) {
	// The transport package itself implements the lifecycle primitives.
	if fromPackage(pass.Pkg.Path(), "transport") {
		return nil, nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			owner := teardownOwners[fd.Name.Name]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if owner {
						return true
					}
					sel, ok := n.Fun.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "Close" || len(n.Args) != 0 {
						return true
					}
					if isTransportConn(pass, sel.X) {
						pass.Reportf(n.Pos(), "direct Close on a transport.Conn outside the lifecycle helpers "+
							"(RunParties/RunGroup/close-once wrappers); ad-hoc closes re-create the PR 2 "+
							"double-close and one-sided-teardown bugs")
					}
				case *ast.GoStmt:
					if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
						checkGoroutineSendRecv(pass, lit)
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

// isTransportConn reports whether e's static type is the transport.Conn
// interface or one of the concrete conn wrappers (FaultConn, StreamConn,
// DeadlineConn) —
// possibly behind a pointer. Wrappers delegate Close to the conn they wrap,
// so closing through one is exactly the ad-hoc close the interface check
// guards against; without this, holding the concrete type would launder a
// close past the analyzer.
func isTransportConn(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	t = deref(t)
	return isNamed(t, "transport", "Conn") ||
		isNamed(t, "transport", "FaultConn") ||
		isNamed(t, "transport", "StreamConn") ||
		isNamed(t, "transport", "DeadlineConn")
}

// checkGoroutineSendRecv flags Send/Recv calls on transport conns inside a
// goroutine body whose error results are discarded.
func checkGoroutineSendRecv(pass *analysis.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Nested goroutines get their own visit from the outer walk.
			return false
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isConnSendRecv(pass, call) {
				pass.Reportf(call.Pos(), "goroutine discards the %s error; surface it (error channel) or "+
					"close/drain the conn on the error path so a transport failure cannot strand the peer "+
					"(PR 2 bug class)", calleeName(call))
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || !isConnSendRecv(pass, call) {
				return true
			}
			// The error is the last result; discarded when its LHS is _.
			last := n.Lhs[len(n.Lhs)-1]
			if id, ok := last.(*ast.Ident); ok && id.Name == "_" {
				pass.Reportf(call.Pos(), "goroutine discards the %s error; surface it (error channel) or "+
					"close/drain the conn on the error path so a transport failure cannot strand the peer "+
					"(PR 2 bug class)", calleeName(call))
			}
		}
		return true
	})
}

// isConnSendRecv reports whether call is Send or Recv on a transport.Conn.
func isConnSendRecv(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if name := sel.Sel.Name; name != "Send" && name != "Recv" {
		return false
	}
	return isTransportConn(pass, sel.X)
}
