package analyzers_test

import (
	"testing"

	"blindfl/internal/analyzers"
	"blindfl/internal/analyzers/analysistest"
)

func TestBigval(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Bigval, "bigval")
}

func TestRngstream(t *testing.T) {
	// The rng fixture is the sanctioned derivation package: its internal
	// coordinate folds must produce no diagnostics.
	analysistest.Run(t, "testdata", analyzers.Rngstream, "rngstream", "rng")
}

func TestTeardown(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Teardown, "teardown")
}

func TestLockguard(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Lockguard, "lockguard")
}

func TestFloatpure(t *testing.T) {
	analysistest.Run(t, "testdata", analyzers.Floatpure, "fixedpoint", "hetensor")
}
