package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"blindfl/internal/analyzers/analysis"
)

// Rngstream flags RNG constructions whose seed is derived arithmetically
// from another seed — seed+1, seed*2+role, seed+int64(i) — in non-test
// code. Raw arithmetic makes streams alias: PR 5's mask-RNG bug seeded the
// two peers of session i with seed+i and seed+i+1, so adjacent sessions of
// a k-party group shared mask streams and the HE2SS obfuscation values
// correlated across sessions. Seeds must route through a hash derivation
// (protocol.SessionRNG / rng.Derive, SplitMix64 over every distinguishing
// input) so distinct (seed, purpose) pairs cannot collide by construction.
var Rngstream = &analysis.Analyzer{
	Name: "rngstream",
	Doc: "flags rand seeds built by arithmetic on another seed instead of a hash derivation\n\n" +
		"seed+1/seed*2+role seeding makes RNG streams alias across sessions and roles (the PR 5 " +
		"mask-stream collision); derive seeds via protocol.SessionRNG or rng.Derive instead.",
	Run: runRngstream,
}

// seedCalls maps math/rand (and math/rand/v2) constructors to the indices
// of their seed arguments.
var seedCalls = map[string][]int{
	"NewSource":  {0},    // rand.NewSource(seed)
	"NewPCG":     {0, 1}, // rand/v2 NewPCG(seed1, seed2)
	"NewZipf":    nil,    // not a seed
	"Seed":       {0},    // (*rand.Rand).Seed / rand.Seed
	"NewChaCha8": nil,    // [32]byte key, no int seed
}

// deriveCoords maps the sanctioned derivation entry points — package rng,
// plus protocol's session wrappers — to the indices of their stream-
// coordinate arguments, keyed by the defining package's last path segment.
// Arithmetic in a coordinate re-creates inside the derivation exactly the
// aliasing it exists to prevent: rng.Session(seed, lo, j, role) equals
// rng.Session(seed, 0, lo+j, role) BY DESIGN, because folding coordinates is
// internal/rng's job — a caller folding its own (2*shard+j, seed^epoch, …)
// can silently collide with a neighboring shard's stream. Coordinates are
// passed separately; only package rng itself may combine them.
var deriveCoords = map[string]map[string][]int{
	"rng": {
		"Derive":       {0},
		"New":          {0},
		"Session":      {0, 1, 2},
		"SessionEpoch": {0, 1, 2, 4},
	},
	"protocol": {
		"SessionRNG":      {0, 1},
		"ShardSessionRNG": {0, 1, 2},
	},
}

func runRngstream(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || isConv(pass, call) {
				return true
			}
			for _, i := range coordIdxs(pass, call) {
				if i >= len(call.Args) {
					continue
				}
				if bad := arithmeticSeed(pass, call.Args[i]); bad != nil {
					pass.Reportf(bad.Pos(), "stream coordinate is built by arithmetic on another value; "+
						"pass the coordinates separately — folding them (shard+session, seed^epoch) is "+
						"internal/rng's job, and a caller's own fold can alias a neighboring stream "+
						"(PR 5 mask-RNG bug class)")
				}
			}
			idxs, ok := seedCalls[calleeName(call)]
			if !ok || idxs == nil || !isRandCall(pass, call) {
				return true
			}
			for _, i := range idxs {
				if i >= len(call.Args) {
					continue
				}
				if bad := arithmeticSeed(pass, call.Args[i]); bad != nil {
					pass.Reportf(bad.Pos(), "seed is derived arithmetically from another value; "+
						"route it through a SplitMix64 derivation (protocol.SessionRNG / rng.Derive) "+
						"so streams cannot alias (PR 5 mask-RNG bug class)")
				}
			}
			return true
		})
	}
	return nil, nil
}

// coordIdxs returns the stream-coordinate argument indices when call is a
// sanctioned derivation entry point (deriveCoords), nil otherwise. Package
// rng itself is exempt: it is the one place coordinates may be folded.
func coordIdxs(pass *analysis.Pass, call *ast.CallExpr) []int {
	if fromPackage(pass.Pkg.Path(), "rng") {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, ok := pass.TypesInfo.ObjectOf(id).(*types.PkgName)
	if !ok {
		return nil
	}
	path := pn.Imported().Path()
	for seg, fns := range deriveCoords {
		if fromPackage(path, seg) {
			return fns[sel.Sel.Name]
		}
	}
	return nil
}

// isRandCall reports whether call resolves into a math/rand flavored
// package (matched by last path segment "rand", which also covers the
// analysistest fixtures and math/rand/v2's package name).
func isRandCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Package-level call: rand.NewSource(...).
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, isPkg := pass.TypesInfo.ObjectOf(id).(*types.PkgName); isPkg {
			return pathIsRand(pn.Imported().Path())
		}
	}
	// Method call: r.Seed(...) on a *rand.Rand.
	if selInfo, ok := pass.TypesInfo.Selections[sel]; ok {
		if fn := selInfo.Obj(); fn != nil && fn.Pkg() != nil {
			return pathIsRand(fn.Pkg().Path())
		}
	}
	return false
}

func pathIsRand(path string) bool {
	return path == "math/rand" || path == "math/rand/v2" ||
		fromPackage(path, "rand") || fromPackage(path, "v2")
}

// arithmeticSeed returns the offending sub-expression when the seed is an
// arithmetic combination of non-constant values, descending through parens,
// conversions and unary ops but never into real call arguments: a call
// result (mix64(seed+k), SessionRNG(...).Int63()) is a hash-derived seed and
// is exactly what the invariant wants.
func arithmeticSeed(pass *analysis.Pass, e ast.Expr) ast.Expr {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return nil // compile-time constant: rand.NewSource(42+1) is fine
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return arithmeticSeed(pass, x.X)
	case *ast.UnaryExpr:
		return arithmeticSeed(pass, x.X)
	case *ast.CallExpr:
		if isConv(pass, x) && len(x.Args) == 1 {
			return arithmeticSeed(pass, x.Args[0])
		}
		return nil
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
			token.AND, token.OR, token.XOR, token.SHL, token.SHR, token.AND_NOT:
			return x
		}
	}
	return nil
}
