// Package analyzers is the blindfl-vet suite: five static checkers encoding
// the invariants this repo has already shipped — and fixed — violations of.
// Each analyzer targets a mechanically recognizable bug class from the
// project's own history:
//
//	bigval    — big.Int/paillier.Ciphertext copied by value, and mutation of
//	            shared read-only dot-table cache results (PR 4 discipline)
//	rngstream — RNG seeds derived arithmetically from other seeds instead of
//	            through the SplitMix64 derivation (the PR 5 mask-stream
//	            aliasing bug class)
//	teardown  — transport conns closed outside the approved lifecycle
//	            helpers, and goroutines that discard Send/Recv errors (the
//	            PR 2 double-close/hang bug class)
//	lockguard — access to "guarded by mu" fields without the lock held
//	floatpure — floating-point arithmetic inside the exact-integer zones
//	            (paillier, fixedpoint cores, the integer serve kernels)
//
// Suppression is only via the audited //blindfl:allow directive
// (internal/analyzers/allow); see docs/INVARIANTS.md for the catalogue.
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"blindfl/internal/analyzers/analysis"
)

// All returns the full suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{Bigval, Rngstream, Teardown, Lockguard, Floatpure}
}

// isTestFile reports whether the file sits in a _test.go file. Several
// analyzers confine themselves to non-test code: tests legitimately own
// conn lifecycles, probe locked structs single-threadedly, and compare
// against float references.
func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

// namedType unwraps aliases and reports the defining package path and name
// of a named type, or ("", "") for unnamed types.
func namedType(t types.Type) (pkgPath, name string) {
	if t == nil {
		return "", ""
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return "", ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// fromPackage reports whether pkgPath names the given package: an exact
// match, or any import path whose last segment matches (so the analyzers
// recognize both blindfl/internal/transport and the analysistest fixture
// package "transport").
func fromPackage(pkgPath, pkg string) bool {
	return pkgPath == pkg || strings.HasSuffix(pkgPath, "/"+pkg)
}

// isNamed reports whether t is the named type pkg.name (package matched by
// last path segment, see fromPackage).
func isNamed(t types.Type, pkg, name string) bool {
	p, n := namedType(t)
	return n == name && fromPackage(p, pkg)
}

// deref peels one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// enclosingFuncs maps every node position range to its nearest enclosing
// named function declaration. funcFor walks the stack the analyzers build
// while inspecting; kept simple: analyzers that need the enclosing FuncDecl
// walk per-declaration instead of per-file.

// calleeName returns the bare selector or identifier name a call invokes
// ("Close" for x.Close(), "cachedTables" for cachedTables(...)), or "".
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isConv reports whether call is a type conversion rather than a function
// or method call.
func isConv(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	return ok && tv.IsType()
}
