// Package bigval exercises the bigval analyzer: big.Int/Ciphertext value
// copies and mutation of shared dot-table cache results.
package bigval

import (
	"math/big"

	"paillier"
)

type wrapped struct {
	v big.Int
}

func passWrapped(w wrapped) { // want `signature passes`
	w.v.SetInt64(0)
}

func copyCipher(c *paillier.Ciphertext) paillier.Ciphertext { // want `signature passes`
	d := *c  // want `assignment copies`
	return d // want `return copies`
}

func callCopies(c *paillier.Ciphertext) {
	sink(*c) // want `call passes`
}

func sink(c interface{}) { _ = c }

func fresh() *big.Int {
	var z big.Int
	z.SetInt64(1)
	w := wrapped{}
	w.v.SetInt64(2)
	return &z
}

func tableCacheGet(key string) *paillier.DotTables { return &paillier.DotTables{} }

func useCache() int {
	t := tableCacheGet("k")
	t.N = 9   // want `shared and read-only`
	t.Touch() // want `non-read-only method`
	return t.Dot() + t.Window() + t.Bytes()
}
