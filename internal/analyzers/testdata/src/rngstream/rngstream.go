// Package rngstream exercises the rngstream analyzer, including a
// reconstruction of the PR 5 session-seed aliasing bug and the PR 10
// coordinate-folding rule on the sanctioned derivation entry points.
package rngstream

import (
	"math/rand"

	"protocol"
	"rng"
)

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// maskStreams reconstructs the PR 5 bug shape: session i seeds its peers
// with seed+i and seed+i+1, so party B of session i and party A of session
// i+1 share a mask stream.
func maskStreams(seed int64, sessions int) []*rand.Rand {
	out := make([]*rand.Rand, 0, 2*sessions)
	for i := 0; i < sessions; i++ {
		a := rand.New(rand.NewSource(seed + int64(i)))     // want `derived arithmetically`
		b := rand.New(rand.NewSource(seed + int64(i) + 1)) // want `derived arithmetically`
		out = append(out, a, b)
	}
	return out
}

func plainSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func constSeed() *rand.Rand {
	return rand.New(rand.NewSource(42 + 1))
}

func derivedSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(int64(mix64(uint64(seed) + 1))))
}

func legacySeed(seed int64) *rand.Rand {
	//blindfl:allow rngstream reproduces the pre-fix stream for the migration test
	return rand.New(rand.NewSource(seed + 1))
}

// shardCoordFold reconstructs the PR 10 temptation: folding the shard's
// session offset into the session coordinate by hand instead of passing the
// coordinates separately. The fold is rng.Session's job; a caller's own fold
// can alias a neighboring shard's stream.
func shardCoordFold(seed int64, lo, j int) int64 {
	return rng.Session(seed, 0, lo+j, 1) // want `coordinate is built by arithmetic`
}

// shardCoordsSeparate is the approved shape: every coordinate its own
// argument, the derivation does the folding.
func shardCoordsSeparate(seed int64, lo, j int) int64 {
	return rng.Session(seed, lo, j, 1)
}

func seedCoordFold(seed int64, run int64) int64 {
	return rng.Derive(seed^run, "batch-order") // want `coordinate is built by arithmetic`
}

func epochCoordFold(seed int64, session, epoch int) int64 {
	return rng.SessionEpoch(seed, 0, session, 1, epoch*2+1) // want `coordinate is built by arithmetic`
}

func constCoords(seed int64) int64 {
	return rng.SessionEpoch(seed, 0, 3+1, 1, 0) // constant folds are fine
}

func wrapperCoordFold(seed int64, lo, j int) *rand.Rand {
	return protocol.SessionRNG(seed, lo+j, protocol.PartyB) // want `coordinate is built by arithmetic`
}

func wrapperCoordsSeparate(seed int64, lo, j int) *rand.Rand {
	return protocol.ShardSessionRNG(seed, lo, j, protocol.PartyB)
}
