// Package rngstream exercises the rngstream analyzer, including a
// reconstruction of the PR 5 session-seed aliasing bug.
package rngstream

import "math/rand"

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// maskStreams reconstructs the PR 5 bug shape: session i seeds its peers
// with seed+i and seed+i+1, so party B of session i and party A of session
// i+1 share a mask stream.
func maskStreams(seed int64, sessions int) []*rand.Rand {
	out := make([]*rand.Rand, 0, 2*sessions)
	for i := 0; i < sessions; i++ {
		a := rand.New(rand.NewSource(seed + int64(i)))     // want `derived arithmetically`
		b := rand.New(rand.NewSource(seed + int64(i) + 1)) // want `derived arithmetically`
		out = append(out, a, b)
	}
	return out
}

func plainSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func constSeed() *rand.Rand {
	return rand.New(rand.NewSource(42 + 1))
}

func derivedSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(int64(mix64(uint64(seed) + 1))))
}

func legacySeed(seed int64) *rand.Rand {
	//blindfl:allow rngstream reproduces the pre-fix stream for the migration test
	return rand.New(rand.NewSource(seed + 1))
}
