// Package protocol is a fixture stand-in for internal/protocol's session
// RNG wrappers, exercising the rngstream coordinate rule at the wrapper
// call sites.
package protocol

import (
	"math/rand"

	"rng"
)

type Role uint64

const (
	PartyA Role = 1
	PartyB Role = 2
)

func SessionRNG(seed int64, session int, role Role) *rand.Rand {
	return rand.New(rand.NewSource(rng.Session(seed, 0, session, uint64(role))))
}

func ShardSessionRNG(seed int64, shard, session int, role Role) *rand.Rand {
	return rand.New(rand.NewSource(rng.Session(seed, shard, session, uint64(role))))
}
