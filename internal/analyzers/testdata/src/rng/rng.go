// Package rng is a fixture stand-in for internal/rng: the sanctioned
// derivation package the rngstream coordinate rule exempts (it is the one
// place stream coordinates may be folded) while flagging arithmetic in its
// callers' coordinate arguments.
package rng

import "math/rand"

func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Derive folds the label into the seed — sanctioned arithmetic, inside the
// derivation package.
func Derive(seed int64, label string) int64 {
	h := Mix64(uint64(seed) + 0x9e3779b97f4a7c15)
	for i := 0; i < len(label); i++ {
		h = Mix64(h ^ uint64(label[i]))
	}
	return int64(h)
}

func New(seed int64, label string) *rand.Rand {
	return rand.New(rand.NewSource(Derive(seed, label)))
}

// Session folds shard+session — the identity the coordinate rule protects:
// only this package may do the fold.
func Session(seed int64, shard, session int, role uint64) int64 {
	h := Mix64(uint64(seed))
	h = Mix64(h ^ uint64(shard+session))
	h = Mix64(h ^ role)
	return int64(h)
}

func SessionEpoch(seed int64, shard, session int, role uint64, epoch int) int64 {
	h := Mix64(uint64(Session(seed, shard, session, role)))
	h = Mix64(h ^ uint64(epoch+1))
	return int64(h)
}
