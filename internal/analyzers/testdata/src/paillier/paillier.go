// Package paillier is a fixture stand-in for blindfl/internal/paillier: the
// same type names the bigval analyzer keys on, with none of the crypto.
package paillier

import "math/big"

// Ciphertext mirrors the real one-pointer struct: a value copy aliases C.
type Ciphertext struct {
	C *big.Int
}

// DotTables stands in for the shared precomputed dot tables.
type DotTables struct {
	N int
}

// Dot is read-only: callable on cache results.
func (t *DotTables) Dot() int { return t.N }

// Window is read-only: callable on cache results.
func (t *DotTables) Window() int { return t.N }

// Bytes is read-only: callable on cache results.
func (t *DotTables) Bytes() int { return t.N }

// Touch mutates the tables and must never run on a cache result.
func (t *DotTables) Touch() { t.N++ }
