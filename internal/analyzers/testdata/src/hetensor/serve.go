// Package hetensor exercises floatpure's per-file zone: only serve.go is
// exact-integer territory.
package hetensor

func kernelScale(acc int64, f float64) float64 {
	return float64(acc) * f // want `float arithmetic in an exact-integer zone`
}
