package hetensor

// Metrics lives outside the serve.go zone: float math is fine here.
func Metrics(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}
