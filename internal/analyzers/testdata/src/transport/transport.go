// Package transport is a fixture stand-in for blindfl/internal/transport:
// just the Conn interface the teardown analyzer keys on.
package transport

// Conn mirrors the real duplex connection interface.
type Conn interface {
	Send(v interface{}) error
	Recv(v interface{}) error
	Close() error
}
