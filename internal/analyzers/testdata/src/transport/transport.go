// Package transport is a fixture stand-in for blindfl/internal/transport:
// just the Conn interface the teardown analyzer keys on.
package transport

// Conn mirrors the real duplex connection interface.
type Conn interface {
	Send(v interface{}) error
	Recv(v interface{}) error
	Close() error
}

// FaultConn mirrors the fault-injecting conn wrapper: Close delegates to the
// wrapped conn, so the analyzer treats it as a conn.
type FaultConn struct{ inner Conn }

func (f *FaultConn) Send(v interface{}) error { return f.inner.Send(v) }
func (f *FaultConn) Recv(v interface{}) error { return f.inner.Recv(v) }
func (f *FaultConn) Close() error             { return f.inner.Close() }

// StreamConn mirrors the chunk-recovery conn wrapper.
type StreamConn struct{ inner Conn }

func (s *StreamConn) Send(v interface{}) error { return s.inner.Send(v) }
func (s *StreamConn) Recv(v interface{}) error { return s.inner.Recv(v) }
func (s *StreamConn) Close() error             { return s.inner.Close() }
