// Package fixedpoint exercises the floatpure analyzer: this package name
// puts every function outside the Encode/Decode codec boundary in the
// exact-integer zone.
package fixedpoint

// Encode is a codec boundary: floats legitimately enter here.
func Encode(x float64, scale int64) int64 {
	return int64(x * float64(scale))
}

// Decode is a codec boundary: floats legitimately leave here.
func Decode(v, scale int64) float64 {
	return float64(v) / float64(scale)
}

// meanScaled is inside the zone: its float math is the bug class.
func meanScaled(vs []int64, scale int64) float64 {
	s := 0.0
	for _, v := range vs {
		s += float64(v) // want `float arithmetic in an exact-integer zone`
	}
	return s / float64(scale*int64(len(vs))) // want `float arithmetic in an exact-integer zone`
}

// sum stays in integers: fine.
func sum(vs []int64) int64 {
	var s int64
	for _, v := range vs {
		s += v
	}
	return s
}
