// Package teardown exercises the teardown analyzer, including a
// reconstruction of the PR 2 double-close bug.
package teardown

import "transport"

// adHocClose reconstructs the PR 2 shape: each party closes the shared conn
// on its own error path, double-closing the pair and stranding the peer.
func adHocClose(c transport.Conn, err error) {
	if err != nil {
		c.Close() // want `outside the lifecycle helpers`
	}
}

// RunParties is an approved lifecycle helper: it owns both conns.
func RunParties(a, b transport.Conn) {
	a.Close()
	b.Close()
}

type session struct {
	c transport.Conn
}

// Close is a close-once wrapper: direct closes are its job.
func (s *session) Close() error {
	return s.c.Close()
}

// adHocWrapperClose closes through the concrete fault-injection wrapper:
// the wrapper delegates Close to the conn it wraps, so this is the same
// ad-hoc close as adHocClose, laundered through a concrete type.
func adHocWrapperClose(fc *transport.FaultConn, err error) {
	if err != nil {
		fc.Close() // want `outside the lifecycle helpers`
	}
}

// adHocStreamClose is the same shape through the stream-recovery wrapper.
func adHocStreamClose(sc *transport.StreamConn) {
	sc.Close() // want `outside the lifecycle helpers`
}

// CloseSession is the group's sanctioned retire-one-session path: it owns
// the close (and the lost-session bookkeeping that goes with it).
func CloseSession(c transport.Conn) {
	c.Close()
}

// RunShardRoot is the sharded-run owner (PR 10): on the first error it
// closes every feature-party conn and every shard link, so one lost shard
// surfaces as one typed failure instead of k cascades.
func RunShardRoot(as []transport.Conn, ctl transport.Conn) {
	for _, c := range as {
		c.Close()
	}
	ctl.Close()
}

// shardCleanup is not an owner: tearing down a shard link outside
// RunShardRoot re-creates the cascade the single-owner rule prevents.
func shardCleanup(ctl transport.Conn, err error) {
	if err != nil {
		ctl.Close() // want `outside the lifecycle helpers`
	}
}

func fireAndForget(c transport.Conn, v interface{}) {
	go func() {
		c.Send(v) // want `discards the Send error`
	}()
	go func() {
		var r int
		_ = c.Recv(&r) // want `discards the Recv error`
	}()
}

// supervised surfaces transport errors on a channel: the approved shape.
func supervised(c transport.Conn, v interface{}) <-chan error {
	errs := make(chan error, 1)
	go func() {
		errs <- c.Send(v)
	}()
	return errs
}

// handled checks the error inline: also fine.
func handled(c transport.Conn, v interface{}, fail func(error)) {
	go func() {
		if err := c.Send(v); err != nil {
			fail(err)
		}
	}()
}
