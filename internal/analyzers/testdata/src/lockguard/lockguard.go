// Package lockguard exercises the lockguard analyzer on both guard shapes:
// a var-level "All fields are guarded by mu" doc and per-field comments.
package lockguard

import "sync"

// stats mirrors hetensor's table-cache shape.
// All fields are guarded by mu.
var stats struct {
	mu   sync.Mutex
	hits int64
}

func recordHit() {
	stats.mu.Lock()
	stats.hits++
	stats.mu.Unlock()
}

func peek() int64 {
	return stats.hits // want `without stats.mu held`
}

func deferred() int64 {
	stats.mu.Lock()
	defer stats.mu.Unlock()
	return stats.hits
}

type box struct {
	mu sync.Mutex
	v  int // guarded by mu
}

func (b *box) get() int {
	return b.v // want `without b.mu held`
}

func (b *box) getSafe() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.v
}

// vLocked follows the *Locked convention: callers hold the lock.
func (b *box) vLocked() int {
	return b.v
}

func (b *box) bump() {
	b.mu.Lock()
	b.v++
	b.mu.Unlock()
	b.v = 0 // want `without b.mu held`
}
