// Package serve is the blindfl-serve runtime: an online encrypted-inference
// service the label party runs over a trained vertical model. Concurrent
// single-request callers are batched into the K ciphertext packing lanes —
// cross-request lane batching, so a full lane group costs the same
// homomorphic work as one request — and executed over the Predictor's
// persistent serve sessions, whose long-lived encrypted weight pieces keep
// the dot-table cache warm on every query. Admission control sheds load when
// the queue is full or the label party's blinding pool runs dry, and an
// AHEAD-style opt-in integrity spot-check re-verifies one random request per
// batch against the plaintext forward path.
package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"blindfl/internal/model"
	"blindfl/internal/paillier"
	"blindfl/internal/tensor"
)

// ErrOverloaded is returned to a request shed by admission control (queue
// full, or the blinding pool is below the configured depth).
var ErrOverloaded = errors.New("serve: overloaded, request shed")

// ErrClosed is returned to requests still pending when the server shuts down.
var ErrClosed = errors.New("serve: server closed")

// Config tunes the request batcher and admission control. The zero value
// serves with lane-width batches, a short flush interval, a queue of a few
// batches, no pool-depth shedding and no spot-checks.
type Config struct {
	// Lanes is the target batch width. 0 means the Predictor's lane width —
	// the packing-optimal choice: every batch of this size costs the same
	// homomorphic work as a single request.
	Lanes int

	// MaxBatch caps the requests per protocol batch. 0 means Lanes (one
	// lane group). Raising it trades per-request latency for throughput by
	// running several lane groups per protocol round trip.
	MaxBatch int

	// FlushInterval bounds how long the batcher waits for a lane group to
	// fill before running a partial batch. 0 means 2ms.
	FlushInterval time.Duration

	// MaxQueue is the pending-request queue depth; requests arriving when
	// it is full are shed with ErrOverloaded. 0 means 4×MaxBatch.
	MaxQueue int

	// MinPool, when positive, sheds requests while the label party's
	// blinding pool has fewer than this many precomputed blindings
	// buffered — backpressure keyed on the pool's refill rate, so bursts
	// degrade gracefully instead of queueing behind slow inline
	// exponentiations. Ignored when no pool is registered for the key.
	MinPool int

	// SpotCheck enables the AHEAD-style integrity check: one random
	// request per batch is re-verified against the plaintext forward path
	// (Predictor.PlainLogits); mismatches are counted in Stats. The check
	// runs on the batch goroutine after responses are delivered, so it
	// costs throughput headroom, not request latency.
	SpotCheck bool

	// SpotSeed seeds the spot-check request picks (0 = fixed default).
	SpotSeed int64
}

// Request is one user's inference request: a single feature row per party.
// XAs[i] is feature party i's 1×inAs[i] slice of the request; XB the label
// party's 1×inB slice.
type Request struct {
	XAs []*tensor.Dense
	XB  *tensor.Dense
}

// Response carries the request's logits row (1×out) or an error.
type Response struct {
	Logits *tensor.Dense
	Err    error
}

// Stats snapshots the server's counters.
type Stats struct {
	Served     int64 // requests answered with logits
	Batches    int64 // protocol batches run
	Shed       int64 // requests rejected by admission control
	Failed     int64 // requests answered with a protocol error
	SpotChecks int64 // integrity re-verifications run
	Mismatches int64 // integrity re-verifications that disagreed
}

type pending struct {
	req  Request
	resp chan Response
}

// Server batches concurrent inference requests over one Predictor.
type Server struct {
	p   *model.Predictor
	cfg Config

	reqs chan *pending
	quit chan struct{}
	done chan struct{}

	served     atomic.Int64
	batches    atomic.Int64
	shed       atomic.Int64
	failed     atomic.Int64
	spotChecks atomic.Int64
	mismatches atomic.Int64
}

// NewServer starts the batcher over a restored Predictor. Close releases it.
func NewServer(p *model.Predictor, cfg Config) *Server {
	if cfg.Lanes <= 0 {
		cfg.Lanes = p.Lanes()
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = cfg.Lanes
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 2 * time.Millisecond
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxBatch
	}
	s := &Server{
		p: p, cfg: cfg,
		reqs: make(chan *pending, cfg.MaxQueue),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go s.batcher()
	return s
}

// Predict submits one request and blocks until its response: the closed-loop
// client call. Safe for arbitrary concurrency; concurrent callers are what
// fills the packing lanes.
func (s *Server) Predict(req Request) Response {
	if err := s.checkReq(req); err != nil {
		return Response{Err: err}
	}
	if s.cfg.MinPool > 0 {
		if pool := paillier.PoolFor(s.p.LabelPK()); pool != nil && pool.Stats().Available < s.cfg.MinPool {
			s.shed.Add(1)
			return Response{Err: ErrOverloaded}
		}
	}
	p := &pending{req: req, resp: make(chan Response, 1)}
	select {
	case s.reqs <- p:
	default:
		s.shed.Add(1)
		return Response{Err: ErrOverloaded}
	}
	select {
	case r := <-p.resp:
		return r
	case <-s.done:
		// The batcher drains the queue on shutdown, so a response may still
		// be in flight; prefer it over the shutdown signal.
		select {
		case r := <-p.resp:
			return r
		default:
			return Response{Err: ErrClosed}
		}
	}
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Served: s.served.Load(), Batches: s.batches.Load(),
		Shed: s.shed.Load(), Failed: s.failed.Load(),
		SpotChecks: s.spotChecks.Load(), Mismatches: s.mismatches.Load(),
	}
}

// Close stops the batcher; requests still queued are answered ErrClosed.
func (s *Server) Close() {
	close(s.quit)
	<-s.done
}

// batcher is the single goroutine that fills lane groups across concurrent
// requests: it blocks for the first request, then collects up to MaxBatch−1
// more until FlushInterval elapses, and runs them as one protocol batch.
func (s *Server) batcher() {
	defer close(s.done)
	spotSeed := s.cfg.SpotSeed
	if spotSeed == 0 {
		spotSeed = 4242
	}
	spotRng := rand.New(rand.NewSource(spotSeed))
	for {
		select {
		case <-s.quit:
			s.drain()
			return
		case first := <-s.reqs:
			batch := []*pending{first}
			timer := time.NewTimer(s.cfg.FlushInterval)
		collect:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case p := <-s.reqs:
					batch = append(batch, p)
				case <-timer.C:
					break collect
				case <-s.quit:
					break collect
				}
			}
			timer.Stop()
			s.runBatch(batch, spotRng)
		}
	}
}

func (s *Server) drain() {
	for {
		select {
		case p := <-s.reqs:
			p.resp <- Response{Err: ErrClosed}
		default:
			return
		}
	}
}

// runBatch stacks the batch's per-party feature rows, runs one federated
// serve forward, and fans the logits rows back out to the callers.
func (s *Server) runBatch(batch []*pending, spotRng *rand.Rand) {
	s.batches.Add(1)
	k := s.p.K()
	xAs := make([]*tensor.Dense, k)
	for i := 0; i < k; i++ {
		i := i
		xAs[i] = stackRows(batch, func(p *pending) *tensor.Dense { return p.req.XAs[i] })
	}
	xB := stackRows(batch, func(p *pending) *tensor.Dense { return p.req.XB })
	logits, err := s.p.PredictBatch(xAs, xB)
	if err != nil {
		s.failed.Add(int64(len(batch)))
		for _, p := range batch {
			p.resp <- Response{Err: err}
		}
		return
	}
	for j, p := range batch {
		p.resp <- Response{Logits: logits.RowSlice(j, j+1).Clone()}
	}
	s.served.Add(int64(len(batch)))
	if s.cfg.SpotCheck {
		s.spotCheckOne(logits, xAs, xB, spotRng)
	}
}

// spotCheckOne re-verifies one random request of the batch against the
// plaintext forward path. The serve protocol is exact, so any deviation —
// not just a large one — is a mismatch.
func (s *Server) spotCheckOne(logits *tensor.Dense, xAs []*tensor.Dense, xB *tensor.Dense, rng *rand.Rand) {
	j := rng.Intn(xB.Rows)
	rowAs := make([]*tensor.Dense, len(xAs))
	for i, x := range xAs {
		rowAs[i] = x.RowSlice(j, j+1)
	}
	want, err := s.p.PlainLogits(rowAs, xB.RowSlice(j, j+1))
	s.spotChecks.Add(1)
	if err != nil {
		s.mismatches.Add(1)
		return
	}
	got := logits.RowSlice(j, j+1)
	for t := range want.Data {
		if got.Data[t] != want.Data[t] {
			s.mismatches.Add(1)
			return
		}
	}
}

// checkReq validates one request's shape against the model before it can
// join (and poison) a batch.
func (s *Server) checkReq(req Request) error {
	inAs := s.p.InAs()
	if len(req.XAs) != len(inAs) {
		return fmt.Errorf("serve: request spans %d feature parties, model has %d", len(req.XAs), len(inAs))
	}
	for i, x := range req.XAs {
		if x == nil || x.Rows != 1 || x.Cols != inAs[i] {
			return fmt.Errorf("serve: feature party %d row must be 1×%d", i, inAs[i])
		}
	}
	if req.XB == nil || req.XB.Rows != 1 || req.XB.Cols != s.p.InB() {
		return fmt.Errorf("serve: label party row must be 1×%d", s.p.InB())
	}
	return nil
}

// stackRows stacks the batch's 1×w rows into a len(batch)×w matrix.
func stackRows(batch []*pending, row func(*pending) *tensor.Dense) *tensor.Dense {
	cols := row(batch[0]).Cols
	out := tensor.NewDense(len(batch), cols)
	for j, p := range batch {
		copy(out.Row(j), row(p).Row(0))
	}
	return out
}
