package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"blindfl/internal/tensor"
)

// Closed-loop load generator: a fixed worker pool where every worker submits
// its next request as soon as the previous response lands. Concurrency ≥ the
// lane width keeps the batcher's lane groups full, which is exactly the
// regime cross-request batching is built for; the percentile latencies it
// reports are end-to-end (queueing + batching wait + protocol).

// LoadResult summarizes one load-generator run.
type LoadResult struct {
	Sent     int           // requests submitted
	OK       int           // responses with logits
	Shed     int           // ErrOverloaded responses
	Failed   int           // other errors
	Duration time.Duration // wall clock for the whole run

	// Latency percentiles over the OK responses.
	P50, P95, P99 time.Duration

	Throughput float64 // OK responses per second
}

// RunLoad fires total requests at the server from workers closed-loop
// clients. newReq(i) builds the i-th request (it runs on worker goroutines
// and must be safe for concurrent use).
func RunLoad(s *Server, newReq func(i int) Request, workers, total int) LoadResult {
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	lats := make([][]time.Duration, workers)
	var shed, failed atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				t0 := time.Now()
				resp := s.Predict(newReq(i))
				switch {
				case resp.Err == ErrOverloaded:
					shed.Add(1)
				case resp.Err != nil:
					failed.Add(1)
				default:
					lats[w] = append(lats[w], time.Since(t0))
				}
			}
		}()
	}
	wg.Wait()
	dur := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := LoadResult{
		Sent: total, OK: len(all),
		Shed: int(shed.Load()), Failed: int(failed.Load()),
		Duration: dur,
		P50:      percentile(all, 0.50),
		P95:      percentile(all, 0.95),
		P99:      percentile(all, 0.99),
	}
	if dur > 0 {
		res.Throughput = float64(res.OK) / dur.Seconds()
	}
	return res
}

// percentile returns the q-quantile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// RandomRequests builds a request factory drawing feature rows uniformly
// from a test split — the load generator's standing request source. rows[i]
// picks a row of each party's matrix (the same row across parties, so every
// request is a real aligned instance).
func RandomRequests(xAs []*tensor.Dense, xB *tensor.Dense, rows []int) func(i int) Request {
	return func(i int) Request {
		r := rows[i%len(rows)]
		req := Request{XAs: make([]*tensor.Dense, len(xAs)), XB: xB.RowSlice(r, r+1)}
		for j, x := range xAs {
			req.XAs[j] = x.RowSlice(r, r+1)
		}
		return req
	}
}
