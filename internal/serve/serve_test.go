package serve

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"blindfl/internal/data"
	"blindfl/internal/engine"
	"blindfl/internal/model"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

// newTestPredictor trains a small LR model to a checkpoint and restores a
// Predictor for it on a fresh two-party pipe.
func newTestPredictor(t *testing.T, seed int64) (*model.Predictor, *data.Dataset) {
	t.Helper()
	spec := data.Spec{Name: "t-serve", Feats: 12, AvgNNZ: 12, Classes: 2, Train: 96, Test: 48}
	ds := data.Generate(spec, 21)
	h := model.DefaultHyper()
	h.Epochs = 2
	h.Batch = 32
	h.Seed = 1

	skA, skB := protocol.TestKeys()
	pa, pb, err := protocol.Pipe(skA, skB, seed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := (model.Trainer{Kind: model.LR, Hyper: h, Checkpoint: &buf}).Train(ds, model.Pair(pa, pb)); err != nil {
		t.Fatal(err)
	}
	pa2, pb2, err := protocol.Pipe(skA, skB, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := model.NewPredictor(bytes.NewReader(buf.Bytes()), model.Pair(pa2, pb2))
	if err != nil {
		t.Fatal(err)
	}
	return p, ds
}

func testRequest(ds *data.Dataset, r int) Request {
	return Request{
		XAs: []*tensor.Dense{ds.TestA.Dense.RowSlice(r, r+1)},
		XB:  ds.TestB.Dense.RowSlice(r, r+1),
	}
}

// TestServeConcurrentRequests: concurrent single-request callers sharing one
// batcher/session must each get back exactly their own row's logits, and the
// batcher must have coalesced them into fewer protocol batches than requests
// (cross-request lane batching). Run under -race by the repo's test target.
func TestServeConcurrentRequests(t *testing.T) {
	p, ds := newTestPredictor(t, 700)
	want, err := p.PlainLogits([]*tensor.Dense{ds.TestA.Dense}, ds.TestB.Dense)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(p, Config{FlushInterval: 50 * time.Millisecond})
	defer s.Close()

	n := 3 * p.Lanes()
	if n > ds.TestB.Dense.Rows {
		n = ds.TestB.Dense.Rows
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp := s.Predict(testRequest(ds, i))
			if resp.Err != nil {
				errs[i] = resp.Err
				return
			}
			for c := 0; c < want.Cols; c++ {
				if resp.Logits.At(0, c) != want.At(i, c) {
					t.Errorf("request %d: logit[%d] = %v, want exactly %v", i, c, resp.Logits.At(0, c), want.At(i, c))
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Served != int64(n) {
		t.Fatalf("served %d of %d", st.Served, n)
	}
	if st.Batches >= int64(n) {
		t.Fatalf("no cross-request batching: %d batches for %d concurrent requests", st.Batches, n)
	}
}

// TestServeSpotCheck: the integrity spot-check must run and never mismatch —
// the serve path is exact, so the plaintext reference agrees bit for bit.
func TestServeSpotCheck(t *testing.T) {
	p, ds := newTestPredictor(t, 710)
	s := NewServer(p, Config{SpotCheck: true, FlushInterval: 10 * time.Millisecond})
	defer s.Close()

	res := RunLoad(s, func(i int) Request { return testRequest(ds, i%ds.TestB.Dense.Rows) }, 2*p.Lanes(), 4*p.Lanes())
	if res.OK != res.Sent {
		t.Fatalf("served %d of %d (shed %d, failed %d)", res.OK, res.Sent, res.Shed, res.Failed)
	}
	if res.P50 <= 0 || res.P95 < res.P50 || res.P99 < res.P95 {
		t.Fatalf("implausible percentiles p50=%v p95=%v p99=%v", res.P50, res.P95, res.P99)
	}
	st := s.Stats()
	if st.SpotChecks == 0 {
		t.Fatal("spot-check enabled but never ran")
	}
	if st.Mismatches != 0 {
		t.Fatalf("%d integrity mismatches on an honest run", st.Mismatches)
	}
}

// TestServeShedsOnPoolDepth: with backpressure keyed on the blinding pool,
// requests arriving while the pool is below the watermark are shed with
// ErrOverloaded instead of queueing.
func TestServeShedsOnPoolDepth(t *testing.T) {
	p, ds := newTestPredictor(t, 720)
	_, skB := protocol.TestKeys()
	engine.Options{Pool: 2}.SetupKeys(skB)
	s := NewServer(p, Config{MinPool: 1 << 20})
	defer s.Close()

	resp := s.Predict(testRequest(ds, 0))
	if resp.Err != ErrOverloaded {
		t.Fatalf("expected ErrOverloaded under pool backpressure, got %v", resp.Err)
	}
	if s.Stats().Shed != 1 {
		t.Fatalf("shed counter = %d", s.Stats().Shed)
	}
}

// TestServeRejectsMalformedRequest: shape errors are caught at admission so
// one bad request cannot poison a batch.
func TestServeRejectsMalformedRequest(t *testing.T) {
	p, _ := newTestPredictor(t, 730)
	s := NewServer(p, Config{})
	defer s.Close()
	bad := Request{XAs: []*tensor.Dense{tensor.NewDense(1, 3)}, XB: tensor.NewDense(1, 2)}
	if resp := s.Predict(bad); resp.Err == nil {
		t.Fatal("malformed request accepted")
	}
}
