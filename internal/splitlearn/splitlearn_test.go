package splitlearn

import (
	"math/rand"
	"testing"

	"blindfl/internal/attack"
	"blindfl/internal/data"
	"blindfl/internal/tensor"
)

func testCfg() Config {
	return Config{LR: 0.1, Momentum: 0.9, Batch: 32, Epochs: 6, Seed: 1}
}

func binSpec() data.Spec {
	return data.Spec{Name: "sl-bin", Feats: 30, AvgNNZ: 30, Classes: 2, Train: 400, Test: 200}
}

func TestSplitLinearLeaksLabels(t *testing.T) {
	// The core Fig. 9 finding: with a plaintext local bottom model, Party A
	// predicts labels from X_A·W_A nearly as well as the full model.
	ds := data.Generate(binSpec(), 1)
	res := TrainLinear(ds, testCfg())
	last := len(res.FullMetric) - 1
	if res.FullMetric[last] < 0.7 {
		t.Fatalf("full model AUC %v: did not train", res.FullMetric[last])
	}
	if res.AttackMetric[last] < 0.6 {
		t.Fatalf("attack AUC %v: expected split learning to leak labels", res.AttackMetric[last])
	}
	if res.AttackMetric[last] > res.FullMetric[last]+1e-9 {
		t.Fatalf("attack %v exceeds full model %v", res.AttackMetric[last], res.FullMetric[last])
	}
}

func TestModelSSWithoutGradSSStillLeaks(t *testing.T) {
	// Fig. 9 ablation: secret-sharing the weights at init but applying
	// plaintext gradients to U_A re-leaks the labels; amplifying ‖V_A‖
	// costs the adversary only a slight AUC drop. The paper demonstrates
	// this on the highly separable w8a; Margin sharpens the synthetic
	// stand-in accordingly.
	spec := binSpec()
	spec.Margin = 10
	ds := data.Generate(spec, 2)
	cfg := testCfg()
	cfg.Epochs = 15
	cfg.LR = 0.3
	cfg.Variant = ModelSSNoGradSS
	attackAt := map[float64]float64{}
	for _, scale := range []float64{1, 5, 10} {
		c := cfg
		c.VAScale = scale
		res := TrainLinear(ds, c)
		last := len(res.AttackMetric) - 1
		attackAt[scale] = res.AttackMetric[last]
		if res.AttackMetric[last] < 0.7 {
			t.Errorf("VAScale %v: attack AUC %v; expected leakage through X_A·U_A", scale, res.AttackMetric[last])
		}
	}
	if attackAt[1]-attackAt[10] > 0.1 {
		t.Errorf("scaling V_A 10× dropped the attack from %v to %v; paper reports only a slight drop",
			attackAt[1], attackAt[10])
	}
}

func TestSplitMulticlass(t *testing.T) {
	spec := data.Spec{Name: "sl-mc", Feats: 30, AvgNNZ: 30, Classes: 3, Train: 400, Test: 200}
	ds := data.Generate(spec, 3)
	res := TrainLinear(ds, testCfg())
	last := len(res.FullMetric) - 1
	if res.MetricName != "accuracy" {
		t.Fatalf("metric = %s", res.MetricName)
	}
	if res.FullMetric[last] < 0.5 {
		t.Fatalf("full accuracy %v", res.FullMetric[last])
	}
}

func TestWDLDerivativeAttackSucceeds(t *testing.T) {
	// Fig. 10: Party A labels almost the whole batch from ∇E_A, regardless
	// of the number of hidden layers above the embeddings.
	spec := data.Spec{Name: "sl-wdl", Feats: 20, AvgNNZ: 5, Classes: 2, Train: 300, Test: 100,
		CatFields: 4, CatVocab: 16}
	ds := data.Generate(spec, 4)
	for _, hiddens := range []int{2, 3, 4} {
		cfg := testCfg()
		cfg.Epochs = 10
		res := TrainWDLDerivativeLeak(ds, cfg, 4, 16, hiddens, attack.DerivativeLabelAccuracy)
		// The paper's Fig. 10 curves rise towards total leakage as training
		// converges; average the last fifth of iterations.
		n := len(res.AttackAccuracy)
		tail := res.AttackAccuracy[n-n/5:]
		var avg float64
		for _, a := range tail {
			avg += a
		}
		avg /= float64(len(tail))
		if avg < 0.85 {
			t.Errorf("hiddens=%d: derivative attack accuracy %v; paper reports near-total leakage", hiddens, avg)
		}
	}
}

func TestDerivativeAttackIsChanceOnRandomNoise(t *testing.T) {
	// Sanity: the attack must NOT succeed on label-independent noise.
	rng := rand.New(rand.NewSource(5))
	g := tensor.RandDense(rng, 200, 8, 1)
	y := make([]int, 200)
	for i := range y {
		y[i] = rng.Intn(2)
	}
	acc := attack.DerivativeLabelAccuracy(g, y)
	if acc > 0.65 {
		t.Fatalf("attack accuracy %v on noise; expected ≈ 0.5", acc)
	}
}
