// Package splitlearn implements the split-learning VFL baseline the paper
// anatomizes in Sections 3 and 7.2: each party runs a local bottom model in
// plaintext and exchanges forward activations and backward derivatives. It
// exists to reproduce the leakage experiments — the package deliberately
// exposes to Party A everything the paradigm exposes (its bottom weights
// W_A, its activations X_A·W_A, and the derivatives ∇E_A), so the attack
// package can quantify how much of Party B's label information leaks.
//
// Three weight-handling variants of the linear bottom model are provided,
// matching the Figure 9 ablation:
//
//	PlainBottom — A owns W_A outright (classic split learning);
//	ModelSSNoGradSS — W_A = U_A + V_A is secret-shared at initialization
//	    but A receives plaintext gradients and updates only U_A, with
//	    ‖V_A‖ scaled by VAScale;
//	(full ModelSS+GradSS is BlindFL itself, in internal/core.)
package splitlearn

import (
	"math/rand"

	"blindfl/internal/data"
	"blindfl/internal/nn"
	"blindfl/internal/rng"
	"blindfl/internal/tensor"
)

// Variant selects the Fig. 9 weight-handling ablation.
type Variant int

// Variants of the linear split model.
const (
	PlainBottom Variant = iota
	ModelSSNoGradSS
)

// Config carries the split-learning training settings.
type Config struct {
	Variant  Variant
	VAScale  float64 // ‖V_A‖ multiplier for ModelSSNoGradSS (1, 5, 10 in Fig. 9)
	LR       float64
	Momentum float64
	Batch    int
	Epochs   int
	Seed     int64
}

// LinearResult records, per epoch, the model's real test metric and the
// adversarial metric Party A achieves by predicting labels with the forward
// activations it can compute locally (X_A·W_A, or X_A·U_A under ModelSS).
type LinearResult struct {
	FullMetric   []float64 // B's model on Z = Z_A + Z_B (test set)
	AttackMetric []float64 // A predicting with its locally computable Z_A (test set)
	MetricName   string
}

// TrainLinear trains split LR (binary) or MLR (multi-class) and measures
// the forward-activation label attack after each epoch.
func TrainLinear(ds *data.Dataset, cfg Config) *LinearResult {
	ini := rand.New(rand.NewSource(cfg.Seed))
	classes := ds.Spec.Classes
	out := 1
	if classes > 2 {
		out = classes
	}
	inA, inB := ds.TrainA.NumCols(), ds.TrainB.NumCols()

	// Party A's bottom weights. Under ModelSS, A holds U_A and B holds a
	// static V_A; the effective bottom is W_A = U_A + V_A but A updates U_A
	// with the full plaintext gradient.
	uA := tensor.RandDense(ini, inA, out, 0.1)
	var vA *tensor.Dense
	if cfg.Variant == ModelSSNoGradSS {
		vA = tensor.RandDense(ini, inA, out, 0.1*cfg.VAScale)
	} else {
		vA = tensor.NewDense(inA, out)
	}
	wB := tensor.RandDense(ini, inB, out, 0.1)
	bias := tensor.NewDense(1, out)

	momA := tensor.NewDense(inA, out)
	momB := tensor.NewDense(inB, out)
	momBias := tensor.NewDense(1, out)

	res := &LinearResult{MetricName: "auc"}
	if classes > 2 {
		res.MetricName = "accuracy"
	}

	order := rng.New(cfg.Seed, "order")
	for e := 0; e < cfg.Epochs; e++ {
		perm := data.Shuffle(order, ds.TrainA.Rows())
		for lo := 0; lo < len(perm); lo += cfg.Batch {
			hi := lo + cfg.Batch
			if hi > len(perm) {
				hi = len(perm)
			}
			idx := perm[lo:hi]
			xA := numeric(ds.TrainA.Batch(idx))
			xB := numeric(ds.TrainB.Batch(idx))
			y := gather(ds.TrainY, idx)

			// Forward: A sends Z_A in plaintext (the leaky step).
			zA := xA.MatMul(uA).Add(xA.MatMul(vA))
			zB := xB.MatMul(wB)
			logits := addBias(zA.Add(zB), bias)

			var grad *tensor.Dense
			if classes == 2 {
				_, grad = nn.BCEWithLogits(logits, y)
			} else {
				_, grad = nn.SoftmaxCE(logits, y)
			}

			// Backward: B returns ∇Z_A = grad in plaintext; A updates its
			// piece with the full gradient (no GradSS).
			stepMomentum(uA, momA, xA.TransposeMatMul(grad), cfg.LR, cfg.Momentum)
			stepMomentum(wB, momB, xB.TransposeMatMul(grad), cfg.LR, cfg.Momentum)
			gBias := tensor.NewDense(1, out)
			for i := 0; i < grad.Rows; i++ {
				for j, g := range grad.Row(i) {
					gBias.Data[j] += g
				}
			}
			stepMomentum(bias, momBias, gBias, cfg.LR, cfg.Momentum)
		}

		// Evaluate on the test set.
		xA := numeric(ds.TestA)
		xB := numeric(ds.TestB)
		full := addBias(xA.MatMul(uA).Add(xA.MatMul(vA)).Add(xB.MatMul(wB)), bias)
		// Party A's local inference: X_A·U_A is all it can compute (this
		// equals X_A·W_A for PlainBottom since V_A = 0).
		local := xA.MatMul(uA)
		res.FullMetric = append(res.FullMetric, metric(full, ds.TestY, classes))
		res.AttackMetric = append(res.AttackMetric, metric(local, ds.TestY, classes))
	}
	return res
}

// WDLResult records the per-iteration success of the backward-derivative
// label attack (Fig. 10): Party A predicts the labels of each training
// batch from the ∇E_A it receives.
type WDLResult struct {
	AttackAccuracy []float64 // per iteration, over the batch's labels
}

// TrainWDLDerivativeLeak trains a split WDL model — Party A owns its
// embedding table locally and receives plaintext ∇E_A — with `hiddens`
// hidden layers between the embeddings and the loss, and measures the
// cosine-direction label attack on every iteration.
func TrainWDLDerivativeLeak(ds *data.Dataset, cfg Config, embDim, hidden, hiddens int,
	attack func(gradE *tensor.Dense, y []int) float64) *WDLResult {

	ini := rand.New(rand.NewSource(cfg.Seed))
	inA, inB := ds.TrainA.NumCols(), ds.TrainB.NumCols()
	fldsA, fldsB := ds.TrainA.Cat.Cols, ds.TrainB.Cat.Cols
	vocab := ds.Spec.CatVocab

	// Wide part (numeric) and deep part (categorical) bottoms.
	wWideA := nn.NewParam(tensor.RandDense(ini, inA, 1, 0.1))
	wWideB := nn.NewParam(tensor.RandDense(ini, inB, 1, 0.1))
	embA := nn.NewEmbedding(ini, vocab, embDim, 0.1)
	embB := nn.NewEmbedding(ini, vocab, embDim, 0.1)

	// Deep tower at B: hiddens hidden layers then a single logit.
	var mods []nn.Module
	prev := (fldsA + fldsB) * embDim
	for l := 0; l < hiddens; l++ {
		mods = append(mods, nn.NewLinear(ini, prev, hidden), &nn.ReLU{})
		prev = hidden
	}
	mods = append(mods, nn.NewLinear(ini, prev, 1))
	deep := nn.NewSequential(mods...)

	params := []*nn.Param{wWideA, wWideB, embA.Q, embB.Q}
	params = append(params, deep.Params()...)
	opt := nn.NewSGD(cfg.LR, cfg.Momentum, params)

	res := &WDLResult{}
	order := rng.New(cfg.Seed, "order")
	for e := 0; e < cfg.Epochs; e++ {
		perm := data.Shuffle(order, ds.TrainA.Rows())
		for lo := 0; lo < len(perm); lo += cfg.Batch {
			hi := lo + cfg.Batch
			if hi > len(perm) {
				hi = len(perm)
			}
			idx := perm[lo:hi]
			pA, pB := ds.TrainA.Batch(idx), ds.TrainB.Batch(idx)
			y := gather(ds.TrainY, idx)

			xA, xB := numeric(pA), numeric(pB)
			eA := embA.ForwardIdx(pA.Cat)
			eB := embB.ForwardIdx(pB.Cat)
			e0 := tensor.HStack(eA, eB)
			logits := xA.MatMul(wWideA.W).Add(xB.MatMul(wWideB.W)).Add(deep.Forward(e0))

			_, grad := nn.BCEWithLogits(logits, y)
			opt.ZeroGrad()
			gradE := deep.Backward(grad)
			gradEA := gradE.SliceCols(0, fldsA*embDim) // what A receives
			res.AttackAccuracy = append(res.AttackAccuracy, attack(gradEA, y))

			embA.BackwardIdx(gradEA)
			embB.BackwardIdx(gradE.SliceCols(fldsA*embDim, gradE.Cols))
			wWideA.Grad.AddInPlace(xA.TransposeMatMul(grad))
			wWideB.Grad.AddInPlace(xB.TransposeMatMul(grad))
			opt.Step()
		}
	}
	return res
}

func numeric(p data.Part) *tensor.Dense { return p.NumericDense() }

func addBias(z, bias *tensor.Dense) *tensor.Dense {
	out := z.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j, b := range bias.Row(0) {
			row[j] += b
		}
	}
	return out
}

func stepMomentum(w, buf, grad *tensor.Dense, lr, mu float64) {
	for i, g := range grad.Data {
		buf.Data[i] = mu*buf.Data[i] + g
	}
	w.Axpy(-lr, buf)
}

func metric(logits *tensor.Dense, y []int, classes int) float64 {
	if classes == 2 {
		return nn.AUC(nn.Scores(logits), y)
	}
	return nn.Accuracy(logits, y)
}

func gather(y []int, idx []int) []int {
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = y[j]
	}
	return out
}
