// Command blindfl-serve runs the online encrypted-inference service over a
// trained vertical model: it trains (or restores) a serveable model, starts
// the label party's request batcher over persistent serve sessions, and
// drives it with the closed-loop load generator, reporting end-to-end
// latency percentiles, throughput, shedding and integrity counters.
//
// Usage:
//
//	blindfl-serve -dataset higgs -model lr -requests 512 -spotcheck
//	blindfl-serve -dataset higgs -model mlp -parties 3 -pool 256 -minpool 8
//	blindfl-serve -dataset higgs -train 96 -test 48 -requests 64 -checkpoint /tmp/m.ck
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"blindfl/internal/data"
	"blindfl/internal/engine"
	"blindfl/internal/hetensor"
	"blindfl/internal/model"
	"blindfl/internal/paillier"
	"blindfl/internal/protocol"
	"blindfl/internal/serve"
	"blindfl/internal/tensor"
)

func main() {
	dataset := flag.String("dataset", "higgs", "dataset spec name (see internal/data.Specs; must be dense, e.g. higgs or fmnist)")
	kindStr := flag.String("model", "lr", "model family: lr|mlr|mlp (the serveable families)")
	epochs := flag.Int("epochs", 2, "training epochs before serving")
	batch := flag.Int("batch", 128, "training mini-batch size")
	lr := flag.Float64("lr", 0.05, "learning rate")
	train := flag.Int("train", 0, "override training instances (0 = spec default)")
	test := flag.Int("test", 0, "override test instances")
	seed := flag.Int64("seed", 1, "data/model seed")
	parties := flag.Int("parties", 1, "feature parties; >1 serves over a k-session protocol.Group")
	ckPath := flag.String("checkpoint", "", "serve checkpoint path: reused when it exists, written after training otherwise")
	lanes := flag.Int("lanes", 0, "serve batch width (0 = ciphertext packing lane width)")
	maxBatch := flag.Int("maxbatch", 0, "max requests per protocol batch (0 = batch width)")
	flush := flag.Duration("flush", 2*time.Millisecond, "max wait for a lane group to fill")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4x max batch)")
	minPool := flag.Int("minpool", 0, "shed requests while the label party's blinding pool is below this depth (needs -pool)")
	workers := flag.Int("workers", 0, "closed-loop load-generator clients (0 = 2x max batch)")
	requests := flag.Int("requests", 256, "total requests the load generator fires")
	setupTimeout := flag.Duration("setup-timeout", 0, "bound on each serve-session setup attempt (0 = none); a hung peer fails the attempt with a typed timeout and the next attempt retries on fresh sessions")
	var eng engine.Options
	eng.RegisterFlags(flag.CommandLine)
	flag.Parse()

	kind, err := model.ParseKind(*kindStr)
	if err != nil {
		fatal(err)
	}
	spec, ok := data.Specs[*dataset]
	if !ok {
		fatalf("unknown dataset %q", *dataset)
	}
	if err := eng.Validate(); err != nil {
		fatal(err)
	}
	if *minPool > 0 && eng.Pool <= 0 {
		fatalf("-minpool keys backpressure on the blinding pool; it needs -pool")
	}
	if *train > 0 {
		spec.Train = *train
	}
	if *test > 0 {
		spec.Test = *test
	}
	if *parties < 1 {
		fatalf("-parties must be at least 1")
	}

	fmt.Printf("generating %s (%d train / %d test)...\n", spec.Name, spec.Train, spec.Test)
	ds := data.Generate(spec, *seed)
	if !model.Serveable(kind, ds) {
		fatalf("model %s on dataset %s is not serveable (dense numeric families only)", kind, *dataset)
	}

	h := model.DefaultHyper()
	h.Epochs = *epochs
	h.Batch = *batch
	h.LR = *lr
	h.Seed = *seed
	h.Options = eng

	skA, skB := protocol.TestKeys()
	eng.SetupKeys(skA, skB)
	eng.Apply()
	skAs := make([]*paillier.PrivateKey, *parties)
	for i := range skAs {
		skAs[i] = skA
	}

	ck := loadOrTrain(kind, ds, h, eng, skAs, skB, *ckPath, *seed)

	// Serving runs on fresh sessions: the checkpoint restore plus the
	// serve-session weight exchange is the whole cold start, and each
	// attempt runs under the -setup-timeout deadline — a hung peer turns
	// into a typed transport.ErrTimeout instead of a stuck service.
	// Transient session failures during the exchange (closed, corrupted,
	// timed out) retry on fresh sessions with backoff; checkpoint errors
	// fail immediately.
	t0 := time.Now()
	var liveAs []*protocol.Peer
	var liveG *protocol.Group
	p, err := model.RetryPredictor(3, 50*time.Millisecond, func(attempt int) (*model.Predictor, error) {
		as, g, err := protocol.GroupPipe(skAs, skB, *seed+1+int64(attempt))
		if err != nil {
			return nil, err
		}
		for i := range as {
			as[i].ChunkRows, g.Peers[i].ChunkRows = eng.ChunkRows, eng.ChunkRows
			g.Peers[i].SpotCheck = eng.SpotCheck // label party re-verifies decrypts
			as[i].ANCheck, g.Peers[i].ANCheck = eng.ANCheck, eng.ANCheck
		}
		var pred *model.Predictor
		err = protocol.Within(*setupTimeout, func() {
			for i := range as {
				//blindfl:allow teardown deadline expiry: closing the sessions unblocks the hung setup
				as[i].Conn.Close()
			}
			g.Close()
		}, func() error {
			var err error
			pred, err = model.NewPredictor(bytes.NewReader(ck), model.PartySet{As: as, B: g})
			return err
		})
		if err != nil {
			return nil, err
		}
		liveAs, liveG = as, g
		return pred, nil
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("serve session up in %v (%d feature parties, %d packing lanes)\n",
		time.Since(t0).Round(time.Millisecond), p.K(), p.Lanes())

	s := serve.NewServer(p, serve.Config{
		Lanes: *lanes, MaxBatch: *maxBatch, FlushInterval: *flush,
		MaxQueue: *queue, MinPool: *minPool, SpotCheck: eng.SpotCheck,
	})
	defer s.Close()

	testAs := data.SplitCols(ds.TestA, *parties)
	xAs := make([]*tensor.Dense, *parties)
	for i, part := range testAs {
		xAs[i] = part.Dense
	}
	rows := make([]int, ds.TestB.Dense.Rows)
	for i := range rows {
		rows[i] = i
	}
	w := *workers
	if w <= 0 {
		if w = 2 * *maxBatch; w <= 0 {
			w = 2 * p.Lanes()
		}
	}
	fmt.Printf("firing %d requests from %d closed-loop clients...\n", *requests, w)
	res := serve.RunLoad(s, serve.RandomRequests(xAs, ds.TestB.Dense, rows), w, *requests)

	fmt.Printf("served %d/%d (shed %d, failed %d) in %v — %.1f req/s\n",
		res.OK, res.Sent, res.Shed, res.Failed, res.Duration.Round(time.Millisecond), res.Throughput)
	fmt.Printf("latency p50 %v | p95 %v | p99 %v\n",
		res.P50.Round(time.Microsecond), res.P95.Round(time.Microsecond), res.P99.Round(time.Microsecond))
	st := s.Stats()
	fmt.Printf("batches %d (%.2f requests per protocol batch)\n", st.Batches, avg(st.Served, st.Batches))
	if eng.SpotCheck {
		fmt.Printf("integrity: %d spot-checks, %d mismatches\n", st.SpotChecks, st.Mismatches)
	}
	if eng.ANCheck {
		var anChecks, anBad int64
		for _, peer := range liveAs {
			anChecks += peer.Stream.ANChecks
			anBad += peer.Stream.ANMismatches
		}
		for _, peer := range liveG.Peers {
			anChecks += peer.Stream.ANChecks
			anBad += peer.Stream.ANMismatches
		}
		fmt.Printf("integrity: %d AN-coded residue checks, %d mismatches\n", anChecks, anBad)
	}
	if eng.Pool > 0 {
		ps := paillier.PoolFor(&skB.PublicKey).Stats()
		fmt.Printf("label-party pool: %d hits / %d misses, %d buffered\n", ps.Hits, ps.Misses, ps.Available)
	}
	if eng.TableCacheMB > 0 {
		cs := hetensor.TableCacheStatsNow()
		fmt.Printf("table cache: %d hits / %d misses, %d entries holding %.1f MiB\n",
			cs.Hits, cs.Misses, cs.Entries, float64(cs.Bytes)/(1<<20))
	}

	if res.OK == 0 {
		fatalf("no request served")
	}
	if resp := s.Predict(serve.RandomRequests(xAs, ds.TestB.Dense, rows)(0)); resp.Err != nil {
		fatal(resp.Err)
	} else {
		for _, v := range resp.Logits.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				fatalf("non-finite logit %v in served response", v)
			}
		}
	}
	if st.Mismatches > 0 {
		fatalf("%d integrity mismatches", st.Mismatches)
	}
}

// loadOrTrain returns the serve checkpoint bytes: read from ckPath when the
// file exists, trained (and written to ckPath when set) otherwise.
func loadOrTrain(kind model.Kind, ds *data.Dataset, h model.Hyper, eng engine.Options,
	skAs []*paillier.PrivateKey, skB *paillier.PrivateKey, ckPath string, seed int64) []byte {
	if ckPath != "" {
		if b, err := os.ReadFile(ckPath); err == nil {
			fmt.Printf("restoring checkpoint %s (%d bytes)\n", ckPath, len(b))
			return b
		}
	}
	as, g, err := protocol.GroupPipe(skAs, skB, seed)
	if err != nil {
		fatal(err)
	}
	for i := range as {
		as[i].ChunkRows, g.Peers[i].ChunkRows = eng.ChunkRows, eng.ChunkRows
		g.Peers[i].SpotCheck = eng.SpotCheck
	}
	fmt.Printf("training %s (%d feature parties + label party in-process)...\n", kind, len(skAs))
	var buf bytes.Buffer
	hist, err := model.Trainer{Kind: kind, Hyper: h, Checkpoint: &buf}.Train(ds, model.PartySet{As: as, B: g})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trained: test %s %.4f; checkpoint %d bytes\n", hist.MetricName, hist.TestMetric, buf.Len())
	if ckPath != "" {
		if err := os.WriteFile(ckPath, buf.Bytes(), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", ckPath)
	}
	return buf.Bytes()
}

func avg(n, d int64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
