// Command blindfl-train trains one model on one dataset spec in all three
// flavours — federated BlindFL, NonFed-collocated, and NonFed-PartyB — and
// reports the loss curves and test metrics side by side.
//
// Usage:
//
//	blindfl-train -dataset w8a -model lr -epochs 3
//	blindfl-train -dataset w8a -model lr -parties 3
//	blindfl-train -dataset avazu-app -model wdl -train 600 -quick
//	blindfl-train -dataset higgs -model lr -checkpoint-dir /tmp/ck
//	blindfl-train -dataset higgs -model lr -checkpoint-dir /tmp/ck -resume
package main

import (
	"flag"
	"fmt"
	"os"

	"blindfl/internal/bench"
	"blindfl/internal/data"
	"blindfl/internal/engine"
	"blindfl/internal/hetensor"
	"blindfl/internal/model"
	"blindfl/internal/paillier"
	"blindfl/internal/protocol"
)

func main() {
	dataset := flag.String("dataset", "a9a", "dataset spec name (see internal/data.Specs)")
	kindStr := flag.String("model", "lr", "model family: lr|mlr|mlp|wdl|dlrm")
	epochs := flag.Int("epochs", 3, "training epochs")
	batch := flag.Int("batch", 128, "mini-batch size")
	lr := flag.Float64("lr", 0.05, "learning rate")
	train := flag.Int("train", 0, "override training instances (0 = spec default)")
	test := flag.Int("test", 0, "override test instances")
	seed := flag.Int64("seed", 1, "data/model seed")
	parties := flag.Int("parties", 1, "feature parties; >1 trains the numeric families over a k-session protocol.Group (Algorithm 3)")
	ckDir := flag.String("checkpoint-dir", "", "directory for durable mid-run training checkpoints (crash recovery; serveable families only)")
	ckEvery := flag.Int("checkpoint-every", 1, "epochs between mid-run checkpoints (needs -checkpoint-dir)")
	resume := flag.Bool("resume", false, "resume the newest usable checkpoint in -checkpoint-dir instead of starting fresh")
	var eng engine.Options
	eng.RegisterFlags(flag.CommandLine)
	flag.Parse()

	kind, err := model.ParseKind(*kindStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	spec, ok := data.Specs[*dataset]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	if err := eng.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if kind.UsesEmbedding() && spec.CatFields == 0 {
		fmt.Fprintf(os.Stderr, "model %s needs categorical fields; dataset %s has none\n", kind, *dataset)
		os.Exit(2)
	}
	if *train > 0 {
		spec.Train = *train
	}
	if *test > 0 {
		spec.Test = *test
	}

	fmt.Printf("generating %s (%d train / %d test, %d features, %.2f%% sparse)...\n",
		spec.Name, spec.Train, spec.Test, spec.Feats, spec.Sparsity()*100)
	ds := data.Generate(spec, *seed)

	h := model.DefaultHyper()
	h.Epochs = *epochs
	h.Batch = *batch
	h.LR = *lr
	h.Seed = *seed
	h.Options = eng

	if *parties < 1 {
		fmt.Fprintln(os.Stderr, "-parties must be at least 1")
		os.Exit(2)
	}
	if *resume && *ckDir == "" {
		fmt.Fprintln(os.Stderr, "-resume needs -checkpoint-dir")
		os.Exit(2)
	}
	// One key pair per session: the label party reuses its key across
	// sessions, while every feature party is its own trust domain. The k
	// in-process feature parties share the cached test key (keygen is a
	// per-deployment cost, not a per-run cost).
	skA, skB := protocol.TestKeys()
	eng.SetupKeys(skA, skB)

	tr := model.Trainer{Kind: kind, Hyper: h, CheckpointDir: *ckDir, CheckpointEvery: *ckEvery}
	var fed *model.History
	if *parties > 1 {
		fmt.Printf("training federated BlindFL model (%d feature parties + label party in-process)...\n", *parties)
		skAs := make([]*paillier.PrivateKey, *parties)
		for i := range skAs {
			skAs[i] = skA
		}
		as, g, err := protocol.GroupPipe(skAs, skB, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for i := range as {
			as[i].ChunkRows, g.Peers[i].ChunkRows = eng.ChunkRows, eng.ChunkRows
			g.Peers[i].SpotCheck = eng.SpotCheck // label party re-verifies decrypts
			as[i].ANCheck, g.Peers[i].ANCheck = eng.ANCheck, eng.ANCheck
		}
		fed, err = trainOrResume(tr, *resume, ds, model.PartySet{As: as, B: g})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		fmt.Println("training federated BlindFL model (both parties in-process)...")
		pa, pb, err := protocol.Pipe(skA, skB, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pa.ChunkRows, pb.ChunkRows = eng.ChunkRows, eng.ChunkRows
		pb.SpotCheck = eng.SpotCheck // label party re-verifies decrypts
		pa.ANCheck, pb.ANCheck = eng.ANCheck, eng.ANCheck
		fed, err = trainOrResume(tr, *resume, ds, model.Pair(pa, pb))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if eng.TableCacheMB > 0 {
		cs := hetensor.TableCacheStatsNow()
		fmt.Printf("table cache: %d hits / %d misses, %d entries holding %.1f MiB of %d MiB budget, %d evicted\n",
			cs.Hits, cs.Misses, cs.Entries, float64(cs.Bytes)/(1<<20), eng.TableCacheMB, cs.Evicted)
	}
	fmt.Println("training NonFed-collocated baseline...")
	co := model.TrainCollocated(kind, ds, h)
	fmt.Println("training NonFed-PartyB baseline...")
	onlyB := model.TrainPartyB(kind, ds, h)

	xs, fedLoss := bench.Downsample(fed.Losses, 12)
	_, coLoss := bench.Downsample(co.Losses, 12)
	_, pbLoss := bench.Downsample(onlyB.Losses, 12)
	t := bench.SeriesTable(
		fmt.Sprintf("%s / %s: training loss", spec.Name, kind), "iteration", xs,
		[]bench.Series{
			{Name: "BlindFL", Values: fedLoss},
			{Name: "NonFed-collocated", Values: coLoss},
			{Name: "NonFed-PartyB", Values: pbLoss},
		})
	t.Note("test %s: BlindFL %.4f | NonFed-collocated %.4f | NonFed-PartyB %.4f",
		fed.MetricName, fed.TestMetric, co.TestMetric, onlyB.TestMetric)
	t.Print(os.Stdout)
}

// trainOrResume starts a fresh run, or — with -resume — restores the newest
// usable mid-run checkpoint and trains the remaining epochs bit-exactly.
func trainOrResume(tr model.Trainer, resume bool, ds *data.Dataset, ps model.PartySet) (*model.History, error) {
	if resume {
		fmt.Printf("resuming from %s...\n", tr.CheckpointDir)
		return tr.Resume(ds, ps)
	}
	return tr.Train(ds, ps)
}
