// Command blindfl-train trains one model on one dataset spec in all three
// flavours — federated BlindFL, NonFed-collocated, and NonFed-PartyB — and
// reports the loss curves and test metrics side by side.
//
// Usage:
//
//	blindfl-train -dataset w8a -model lr -epochs 3
//	blindfl-train -dataset w8a -model lr -parties 3
//	blindfl-train -dataset avazu-app -model wdl -train 600 -quick
//	blindfl-train -dataset higgs -model lr -checkpoint-dir /tmp/ck
//	blindfl-train -dataset higgs -model lr -checkpoint-dir /tmp/ck -resume
//	blindfl-train -dataset a9a -model lr -parties 4 -shards 2
//	blindfl-train -dataset a9a -model lr -parties 4 -shards 2 -shard-connect host1:9000,host2:9000
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"blindfl/internal/bench"
	"blindfl/internal/data"
	"blindfl/internal/engine"
	"blindfl/internal/hetensor"
	"blindfl/internal/model"
	"blindfl/internal/paillier"
	"blindfl/internal/protocol"
	"blindfl/internal/transport"
)

func main() {
	dataset := flag.String("dataset", "a9a", "dataset spec name (see internal/data.Specs)")
	kindStr := flag.String("model", "lr", "model family: lr|mlr|mlp|wdl|dlrm")
	epochs := flag.Int("epochs", 3, "training epochs")
	batch := flag.Int("batch", 128, "mini-batch size")
	lr := flag.Float64("lr", 0.05, "learning rate")
	train := flag.Int("train", 0, "override training instances (0 = spec default)")
	test := flag.Int("test", 0, "override test instances")
	seed := flag.Int64("seed", 1, "data/model seed")
	parties := flag.Int("parties", 1, "feature parties; >1 trains the numeric families over a k-session protocol.Group (Algorithm 3)")
	ckDir := flag.String("checkpoint-dir", "", "directory for durable mid-run training checkpoints (crash recovery; serveable families only)")
	ckEvery := flag.Int("checkpoint-every", 1, "epochs between mid-run checkpoints (needs -checkpoint-dir)")
	resume := flag.Bool("resume", false, "resume the newest usable checkpoint in -checkpoint-dir instead of starting fresh")
	shards := flag.Int("shards", 1, "shard the label party across this many worker processes (needs -parties >= -shards); workers are spawned from this binary unless -shard-connect names them")
	shardConnect := flag.String("shard-connect", "", "comma-separated addresses of externally started blindfl-shard workers, one per shard (implies sharded mode)")
	shardDeadline := flag.Duration("shard-deadline", 0, "liveness bound on every shard-link conn (0 = none); workers must run with the same setting")
	shardWorkerMode := flag.Bool("shard-worker", false, "run as a shard worker instead of a training root (internal: the self-spawn target of -shards)")
	shardListen := flag.String("shard-listen", "127.0.0.1:0", "listen address in -shard-worker mode (announced as a SHARD_LISTEN line on stdout)")
	var eng engine.Options
	eng.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *shardWorkerMode {
		_, skB := protocol.TestKeys()
		if err := model.ListenAndServeShard(*shardListen, os.Stdout, skB, *shardDeadline); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	kind, err := model.ParseKind(*kindStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	spec, ok := data.Specs[*dataset]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	if err := eng.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if kind.UsesEmbedding() && spec.CatFields == 0 {
		fmt.Fprintf(os.Stderr, "model %s needs categorical fields; dataset %s has none\n", kind, *dataset)
		os.Exit(2)
	}
	if *train > 0 {
		spec.Train = *train
	}
	if *test > 0 {
		spec.Test = *test
	}

	fmt.Printf("generating %s (%d train / %d test, %d features, %.2f%% sparse)...\n",
		spec.Name, spec.Train, spec.Test, spec.Feats, spec.Sparsity()*100)
	ds := data.Generate(spec, *seed)

	h := model.DefaultHyper()
	h.Epochs = *epochs
	h.Batch = *batch
	h.LR = *lr
	h.Seed = *seed
	h.Options = eng

	if *parties < 1 {
		fmt.Fprintln(os.Stderr, "-parties must be at least 1")
		os.Exit(2)
	}
	if *resume && *ckDir == "" {
		fmt.Fprintln(os.Stderr, "-resume needs -checkpoint-dir")
		os.Exit(2)
	}
	// One key pair per session: the label party reuses its key across
	// sessions, while every feature party is its own trust domain. The k
	// in-process feature parties share the cached test key (keygen is a
	// per-deployment cost, not a per-run cost).
	skA, skB := protocol.TestKeys()
	eng.SetupKeys(skA, skB)

	if *shardConnect != "" && *shards == 1 {
		*shards = len(strings.Split(*shardConnect, ","))
	}
	if *shards > *parties {
		fmt.Fprintf(os.Stderr, "-shards %d needs at least as many -parties (have %d)\n", *shards, *parties)
		os.Exit(2)
	}

	tr := model.Trainer{Kind: kind, Hyper: h, CheckpointDir: *ckDir, CheckpointEvery: *ckEvery}
	var fed *model.History
	if *shards > 1 {
		fmt.Printf("training federated BlindFL model (%d feature parties, label party sharded across %d workers)...\n", *parties, *shards)
		fed, err = runSharded(tr, *resume, ds, skA, *parties, *shards, *shardConnect, *shardDeadline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else if *parties > 1 {
		fmt.Printf("training federated BlindFL model (%d feature parties + label party in-process)...\n", *parties)
		skAs := make([]*paillier.PrivateKey, *parties)
		for i := range skAs {
			skAs[i] = skA
		}
		as, g, err := protocol.GroupPipe(skAs, skB, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for i := range as {
			as[i].ChunkRows, g.Peers[i].ChunkRows = eng.ChunkRows, eng.ChunkRows
			g.Peers[i].SpotCheck = eng.SpotCheck // label party re-verifies decrypts
			as[i].ANCheck, g.Peers[i].ANCheck = eng.ANCheck, eng.ANCheck
		}
		fed, err = trainOrResume(tr, *resume, ds, model.PartySet{As: as, B: g})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		fmt.Println("training federated BlindFL model (both parties in-process)...")
		pa, pb, err := protocol.Pipe(skA, skB, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pa.ChunkRows, pb.ChunkRows = eng.ChunkRows, eng.ChunkRows
		pb.SpotCheck = eng.SpotCheck // label party re-verifies decrypts
		pa.ANCheck, pb.ANCheck = eng.ANCheck, eng.ANCheck
		fed, err = trainOrResume(tr, *resume, ds, model.Pair(pa, pb))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if eng.TableCacheMB > 0 {
		cs := hetensor.TableCacheStatsNow()
		fmt.Printf("table cache: %d hits / %d misses, %d entries holding %.1f MiB of %d MiB budget, %d evicted\n",
			cs.Hits, cs.Misses, cs.Entries, float64(cs.Bytes)/(1<<20), eng.TableCacheMB, cs.Evicted)
	}
	fmt.Println("training NonFed-collocated baseline...")
	co := model.TrainCollocated(kind, ds, h)
	fmt.Println("training NonFed-PartyB baseline...")
	onlyB := model.TrainPartyB(kind, ds, h)

	xs, fedLoss := bench.Downsample(fed.Losses, 12)
	_, coLoss := bench.Downsample(co.Losses, 12)
	_, pbLoss := bench.Downsample(onlyB.Losses, 12)
	t := bench.SeriesTable(
		fmt.Sprintf("%s / %s: training loss", spec.Name, kind), "iteration", xs,
		[]bench.Series{
			{Name: "BlindFL", Values: fedLoss},
			{Name: "NonFed-collocated", Values: coLoss},
			{Name: "NonFed-PartyB", Values: pbLoss},
		})
	t.Note("test %s: BlindFL %.4f | NonFed-collocated %.4f | NonFed-PartyB %.4f",
		fed.MetricName, fed.TestMetric, co.TestMetric, onlyB.TestMetric)
	t.Print(os.Stdout)
}

// trainOrResume starts a fresh run, or — with -resume — restores the newest
// usable mid-run checkpoint and trains the remaining epochs bit-exactly.
func trainOrResume(tr model.Trainer, resume bool, ds *data.Dataset, ps model.PartySet) (*model.History, error) {
	if resume {
		fmt.Printf("resuming from %s...\n", tr.CheckpointDir)
		return tr.Resume(ds, ps)
	}
	return tr.Train(ds, ps)
}

// runSharded trains (or resumes) with the label party sharded across worker
// processes over loopback TCP: externally started blindfl-shard workers when
// -shard-connect names them, otherwise workers self-spawned from this binary
// in -shard-worker mode. The run is bit-identical to the single-process one.
func runSharded(tr model.Trainer, resume bool, ds *data.Dataset, skA *paillier.PrivateKey, parties, shards int, connect string, deadline time.Duration) (*model.History, error) {
	addrs, cleanup, err := shardWorkers(shards, connect, deadline)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	skAs := make([]*paillier.PrivateKey, parties)
	for i := range skAs {
		skAs[i] = skA
	}
	ss := model.ShardSet{Shards: shards, SKAs: skAs, Dial: func(s int) (transport.Conn, error) {
		c, err := transport.Dial(addrs[s])
		if err != nil {
			return nil, err
		}
		if deadline > 0 {
			// Both ends must wrap: heartbeats are filtered by the receiver.
			return transport.NewDeadlineConn(c, deadline, deadline, deadline/3), nil
		}
		return c, nil
	}}
	if resume {
		fmt.Printf("resuming from %s...\n", tr.CheckpointDir)
		return tr.ResumeSharded(ds, ss)
	}
	return tr.TrainSharded(ds, ss)
}

// shardWorkers resolves one worker address per shard: the -shard-connect
// list verbatim, or workers re-execed from this binary on loopback, each
// announcing its ":0"-bound port with a SHARD_LISTEN line. cleanup reaps the
// spawned processes (workers exit on their own after a run; kill covers the
// failure paths).
func shardWorkers(shards int, connect string, deadline time.Duration) ([]string, func(), error) {
	if connect != "" {
		addrs := strings.Split(connect, ",")
		if len(addrs) != shards {
			return nil, nil, fmt.Errorf("-shard-connect names %d workers for %d shards", len(addrs), shards)
		}
		return addrs, func() {}, nil
	}
	var procs []*exec.Cmd
	cleanup := func() {
		for _, c := range procs {
			c.Process.Kill()
			c.Wait()
		}
	}
	addrs := make([]string, 0, shards)
	for s := 0; s < shards; s++ {
		cmd := exec.Command(os.Args[0], "-shard-worker", "-shard-listen", "127.0.0.1:0",
			"-shard-deadline", deadline.String())
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		if err := cmd.Start(); err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("spawning shard worker %d: %w", s, err)
		}
		procs = append(procs, cmd)
		sc := bufio.NewScanner(out)
		addr := ""
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "SHARD_LISTEN "); ok {
				addr = strings.TrimSpace(a)
				break
			}
		}
		if addr == "" {
			cleanup()
			return nil, nil, fmt.Errorf("shard worker %d exited before announcing its address", s)
		}
		addrs = append(addrs, addr)
	}
	return addrs, cleanup, nil
}
