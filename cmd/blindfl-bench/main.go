// Command blindfl-bench regenerates the tables and figures of the BlindFL
// paper's evaluation on synthetic dataset stand-ins.
//
// Usage:
//
//	blindfl-bench -exp table5            # one experiment
//	blindfl-bench -exp fig12 -only w8a   # one figure, selected datasets
//	blindfl-bench -exp all -quick        # everything, reduced sizes
//
// Quick mode shrinks batch sizes, dimensions and epochs so the full suite
// finishes on a laptop; the shapes of the results (who wins, by what
// factor) are preserved. Absolute times are not comparable to the paper's
// GMP/OpenMP implementation on two 96-core servers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"blindfl/internal/bench"
	"blindfl/internal/engine"
	"blindfl/internal/protocol"
)

func main() {
	bench.MaybeRunShardWorker() // re-exec hook for the fedstep_sharded rows
	exp := flag.String("exp", "all", "experiment: table5|table6|table7|table8|fig9|fig10|fig11|fig12|fig15|ablations|all")
	quick := flag.Bool("quick", false, "reduced sizes for a fast end-to-end run")
	only := flag.String("only", "", "comma-separated dataset filter for fig12 (e.g. w8a,higgs)")
	perf := flag.String("perf", "", "run the exponentiation-engine perf suite and write JSON to this path (skips -exp)")
	keybits := flag.Int("keybits", 2048, "Paillier key size for the -perf kernel benchmarks")
	fedstep := flag.Bool("fedstep", true, "include the end-to-end packed fed-step pair (512-bit test keys) in -perf")
	serveMode := flag.Bool("serve", false, "run the serve latency/throughput benchmark (batched vs sequential) and exit")
	serveReqs := flag.Int("servereqs", 64, "batched-run request count for -serve and the -perf serve rows")
	serveBits := flag.Int("servebits", protocol.KeyBits, "Paillier key size for the serve benchmark (512 reuses the cached test keys)")
	var eng engine.Options
	eng.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if err := eng.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *serveMode {
		fmt.Printf("running serve benchmark (%d requests batched run, %d-bit keys)...\n", *serveReqs, *serveBits)
		sp, err := bench.RunServePerf(eng, *serveBits, *serveReqs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(sp)
		return
	}

	if *perf != "" {
		fmt.Println("running fixed calibration op (2048-bit modexp, constant operands)...")
		results := []bench.PerfResult{bench.RunPerfCalibration()}
		fmt.Printf("running exponentiation-engine perf suite (%d-bit kernels)...\n", *keybits)
		kernels, err := bench.RunPerfKernels(*keybits)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		results = append(results, kernels...)
		fmt.Printf("running amortized-precompute suite (%d-bit kernels)...\n", *keybits)
		amort, err := bench.RunPerfAmortized(*keybits)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		results = append(results, amort...)
		if *fedstep {
			fmt.Println("running packed fed-step engine/textbook pair (512-bit test keys)...")
			results = append(results, bench.RunPerfFedStep()...)
			fmt.Println("running cold/warm table-cache fed-epoch pair (512-bit test keys)...")
			results = append(results, bench.RunPerfFedEpoch()...)
			fmt.Println("running multi-party fed-step k=3/k=1 pair (512-bit test keys)...")
			results = append(results, bench.RunPerfFedStepMulti()...)
			fmt.Println("running sharded fed-step family (1/2/4 shards loopback TCP, 1/2 shards WAN sim)...")
			shrows, err := bench.RunPerfFedStepSharded()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			results = append(results, shrows...)
			fmt.Println("running packed fed-step at GOMAXPROCS=2...")
			results = append(results, bench.RunPerfFedStepParallel()...)
			fmt.Printf("running serve latency/throughput pair (%d-bit keys)...\n", *serveBits)
			srows, err := bench.RunPerfServe(eng, *serveBits, *serveReqs)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			results = append(results, srows...)
		}
		if err := bench.WritePerfJSON(*perf, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, r := range results {
			ratio := ""
			if r.Ratio > 0 {
				ratio = fmt.Sprintf("  %6.3fx vs baseline", r.Ratio)
			}
			fmt.Printf("%-28s %-14s %5d bits  %14.0f ns/op  (n=%d)%s\n", r.Op, r.Config, r.KeyBits, r.NsPerOp, r.Iters, ratio)
		}
		fmt.Printf("wrote %s\n", *perf)
		return
	}

	filter := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			filter[strings.TrimSpace(s)] = true
		}
	}

	run := func(name string) error {
		switch name {
		case "table5":
			bench.Table5(*quick).Print(os.Stdout)
		case "table6":
			bench.Table6(*quick).Print(os.Stdout)
		case "table7":
			bench.Table7(*quick).Print(os.Stdout)
		case "table8":
			bench.Table8(*quick).Print(os.Stdout)
		case "fig9":
			for _, t := range bench.Fig9(*quick) {
				t.Print(os.Stdout)
			}
		case "fig10":
			for _, t := range bench.Fig10(*quick) {
				t.Print(os.Stdout)
			}
		case "fig11":
			for _, t := range bench.Fig11(*quick) {
				t.Print(os.Stdout)
			}
		case "fig12":
			for _, t := range bench.Fig12(*quick, filter) {
				t.Print(os.Stdout)
			}
		case "fig15":
			bench.Fig15(*quick).Print(os.Stdout)
		case "ablations":
			for _, t := range bench.Ablations(*quick) {
				t.Print(os.Stdout)
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	if *exp == "all" {
		for _, name := range []string{"table5", "table6", "table7", "table8",
			"fig9", "fig10", "fig11", "fig12", "fig15"} {
			if err := run(name); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}
	if err := run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
