// Command blindfl-shard runs one shard worker of a sharded label party
// (PR 10): it listens for the training root's control link and its slice of
// feature-party session conns, checks the schedule fingerprint, and drives
// its sessions through the deterministic per-epoch schedule — no scheduling
// traffic, just forward partials up and one gradient broadcast down. The
// worker is one-shot: it serves a single run and exits.
//
// Usage:
//
//	blindfl-shard                      # pick a free loopback port, announce it
//	blindfl-shard -listen 0.0.0.0:9000
//	blindfl-train -dataset a9a -model lr -parties 4 -shards 2 \
//	    -shard-connect 127.0.0.1:9000,127.0.0.1:9001
//
// The bound address is announced as a "SHARD_LISTEN host:port" line on
// stdout, which is how a spawning root finds a ":0"-bound worker.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"blindfl/internal/model"
	"blindfl/internal/protocol"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "listen address (\":0\" picks a free port, announced on stdout)")
	deadline := flag.Duration("deadline", 0, "liveness bound on every conn (0 = none); the root must dial with the same -shard-deadline")
	timeout := flag.Duration("timeout", 0, "whole-run watchdog: exit nonzero if the run has not finished after this long (0 = none); keeps CI lanes from hanging on a lost root")
	flag.Parse()

	if *timeout > 0 {
		time.AfterFunc(*timeout, func() {
			fmt.Fprintf(os.Stderr, "blindfl-shard: run exceeded -timeout %s\n", *timeout)
			os.Exit(1)
		})
	}
	_, skB := protocol.TestKeys()
	if err := model.ListenAndServeShard(*listen, os.Stdout, skB, *deadline); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
