// Command blindfl-attack runs the privacy-preservation experiments of the
// paper's Section 7.2: the forward-activation label attack (Fig. 9), the
// backward-derivative label attack (Fig. 10), and the weight/share
// comparison (Fig. 11), against both the split-learning baseline and
// BlindFL.
//
// Usage:
//
//	blindfl-attack            # all three, quick sizes
//	blindfl-attack -full      # paper-scale sizes (slow)
//	blindfl-attack -exp fig10
package main

import (
	"flag"
	"fmt"
	"os"

	"blindfl/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig9|fig10|fig11|all")
	full := flag.Bool("full", false, "paper-scale sizes (slow; default is quick)")
	flag.Parse()

	quick := !*full
	switch *exp {
	case "fig9":
		printAll(bench.Fig9(quick))
	case "fig10":
		printAll(bench.Fig10(quick))
	case "fig11":
		printAll(bench.Fig11(quick))
	case "all":
		printAll(bench.Fig9(quick))
		printAll(bench.Fig10(quick))
		printAll(bench.Fig11(quick))
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func printAll(ts []*bench.Table) {
	for _, t := range ts {
		t.Print(os.Stdout)
	}
}
