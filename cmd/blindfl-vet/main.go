// Command blindfl-vet runs the repo's invariant analyzers (see
// internal/analyzers) in two modes:
//
// Standalone, over package patterns:
//
//	blindfl-vet ./...
//	blindfl-vet -rngstream -teardown ./internal/model/
//
// As a go vet tool, speaking the unitchecker protocol the go command uses
// to drive vet tools (-flags, -V=full, and a vet.cfg unit file per
// package):
//
//	go vet -vettool=$(command -v blindfl-vet) ./...
//
// With no analyzer flags every analyzer runs; naming analyzers runs just
// those. Diagnostics go to stderr as file:line:col: message [analyzer];
// the exit status is 2 when anything is reported, matching go vet.
// Suppression is only via //blindfl:allow directives (and suppressing
// nothing, or lacking a reason, is itself reported).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"

	"blindfl/internal/analyzers"
	"blindfl/internal/analyzers/allow"
	"blindfl/internal/analyzers/analysis"
	"blindfl/internal/analyzers/load"
)

func main() {
	os.Exit(run())
}

func run() int {
	suite := analyzers.All()

	vFlag := flag.String("V", "", "print version and exit (go tool protocol)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit (go vet protocol)")
	enable := map[string]*bool{}
	for _, a := range suite {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		enable[a.Name] = flag.Bool(a.Name, false, "run only the "+a.Name+" analyzer: "+doc)
	}
	flag.Parse()

	switch {
	case *vFlag != "":
		// go vet identifies tools by `name version ... buildID=<hex>`; hash
		// the executable so the ID tracks the binary's content.
		fmt.Printf("blindfl-vet version devel buildID=%s\n", selfID())
		return 0
	case *flagsFlag:
		return printFlags(suite)
	}

	// Analyzer selection: explicit flags pick a subset, none means all.
	enabled := map[string]bool{}
	any := false
	for name, on := range enable {
		if *on {
			enabled[name] = true
			any = true
		}
	}
	if !any {
		for _, a := range suite {
			enabled[a.Name] = true
		}
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runUnit(suite, enabled, args[0])
	}
	return runPatterns(suite, enabled, args)
}

// selfID returns a content hash of the running executable, or a fixed ID
// when the binary cannot be read (the go command only needs a stable token).
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// printFlags implements the -flags handshake: the go command asks which
// flags the tool understands before constructing vet command lines.
func printFlags(suite []*analysis.Analyzer) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range suite {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: doc})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	data, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	os.Stdout.Write(append(data, '\n'))
	return 0
}

// vetConfig is the unit file the go command writes for each package
// (cmd/go/internal/work's vetConfig, fields this tool consumes).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	SucceedOnTypecheckFailure bool
	VetxOnly                  bool
	VetxOutput                string
}

// runUnit analyzes one package from a go-vet unit file.
func runUnit(suite []*analysis.Analyzer, enabled map[string]bool, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "blindfl-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The tool exports no facts, but the go command caches and feeds back
	// the output file, so it must exist even on the facts-only pass.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	l := load.New()
	l.Exports = cfg.PackageFile
	l.ImportMap = cfg.ImportMap
	files := cfg.GoFiles
	for i, f := range files {
		if !strings.HasPrefix(f, "/") && cfg.Dir != "" {
			files[i] = cfg.Dir + "/" + f
		}
	}
	pkg, err := l.LoadFiles(cfg.ImportPath, files)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if len(pkg.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		for _, e := range pkg.TypeErrors {
			fmt.Fprintln(os.Stderr, e)
		}
		return 1
	}
	n := analyze(suite, enabled, l.Fset, pkg)
	writeVetx()
	if n > 0 {
		return 2
	}
	return 0
}

// runPatterns analyzes packages matched by go list patterns (default ./...).
func runPatterns(suite []*analysis.Analyzer, enabled map[string]bool, patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, exports, err := load.GoList("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	findings := 0
	for _, t := range targets {
		l := load.New()
		l.Exports = exports
		pkg, err := l.LoadFiles(t.Path(), t.AbsGoFiles())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if len(pkg.TypeErrors) > 0 {
			for _, e := range pkg.TypeErrors {
				fmt.Fprintln(os.Stderr, e)
			}
			return 1
		}
		findings += analyze(suite, enabled, l.Fset, pkg)
	}
	if findings > 0 {
		return 2
	}
	return 0
}

// analyze runs the enabled analyzers over one loaded package with
// //blindfl:allow filtering, printing diagnostics; returns the count.
func analyze(suite []*analysis.Analyzer, enabled map[string]bool, fset *token.FileSet, pkg *load.Package) int {
	ix := allow.NewIndex(fset, pkg.Files)
	count := 0
	report := func(name string) func(analysis.Diagnostic) {
		return func(d analysis.Diagnostic) {
			count++
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, name)
		}
	}
	for _, a := range suite {
		if !enabled[a.Name] {
			continue
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    report(a.Name),
		}
		allow.Filter(pass, ix)
		if _, err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "blindfl-vet: %s: %v\n", a.Name, err)
			count++
		}
	}
	for _, p := range ix.Problems(enabled) {
		count++
		fmt.Fprintf(os.Stderr, "%s: %s [allow]\n", fset.Position(p.Pos), p.Message)
	}
	return count
}
