module blindfl

go 1.24
