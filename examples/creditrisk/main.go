// Credit-risk scoring: the paper's Fintech motivating workload.
//
// A bank (Party B) holds repayment labels, account aggregates and two
// categorical fields; a social platform (Party A) holds sparse behavioural
// features and two categorical profile fields for an overlapping user set.
// The parties first align their user IDs with PSI, then train a Wide & Deep
// model: a sparse MatMul source layer over the numeric features (wide) and
// an Embed-MatMul source layer over the categorical fields (deep).
//
//	go run ./examples/creditrisk
package main

import (
	"fmt"
	"log"

	"blindfl/internal/data"
	"blindfl/internal/model"
	"blindfl/internal/protocol"
)

func main() {
	// The bank and the platform each observe a superset of users; only the
	// PSI intersection trains the model.
	spec := data.Spec{Name: "creditrisk", Feats: 200, AvgNNZ: 16, Classes: 2,
		Train: 700, Test: 200, CatFields: 4, CatVocab: 24, Margin: 12}
	ds := data.Generate(spec, 11)

	// PSI alignment: the platform knows users [0, 600), the bank knows
	// [100, 700); both learn only the 500-user overlap, in matching order.
	idsA := make([]string, 600)
	idsB := make([]string, 600)
	for i := range idsA {
		idsA[i] = fmt.Sprintf("user-%04d", i)
		idsB[i] = fmt.Sprintf("user-%04d", i+100)
	}
	subA := ds.TrainA.Batch(seq(0, 600))
	subB := ds.TrainB.Batch(seq(100, 700))
	alignedA, alignedB, alignedY := data.Align(idsA, idsB, subA, subB, ds.TrainY[100:700])
	fmt.Printf("PSI: platform holds %d users, bank holds %d, intersection %d\n",
		len(idsA), len(idsB), alignedA.Rows())

	train := &data.Dataset{
		Spec:   spec,
		TrainA: alignedA, TrainB: alignedB, TrainY: alignedY,
		TestA: ds.TestA, TestB: ds.TestB, TestY: ds.TestY,
	}

	h := model.DefaultHyper()
	h.Epochs = 4
	h.Batch = 64
	h.EmbDim = 4
	h.Hidden = []int{8}
	h.LR = 0.1
	// Plain SGD for the demo: with momentum enabled the sparse wide part
	// uses lazy momentum (see DESIGN.md), which needs a longer schedule to
	// match the dense baseline.
	h.Momentum = 0

	skA, skB := protocol.TestKeys()
	pa, pb, err := protocol.Pipe(skA, skB, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training federated Wide & Deep risk model...")
	fed, err := model.TrainFederated(model.WDL, train, h, pa, pb)
	if err != nil {
		log.Fatal(err)
	}

	bankOnly := model.TrainPartyB(model.WDL, train, h)
	fmt.Printf("risk model AUC — federated (bank+platform): %.4f | bank alone: %.4f\n",
		fed.TestMetric, bankOnly.TestMetric)
	fmt.Println("(4-epoch demo schedule; longer training widens the federated advantage)")
	fmt.Println("the platform's raw features, weights and labels never left either party in the clear")
}

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
