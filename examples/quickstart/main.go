// Quickstart: federated logistic regression with BlindFL.
//
// This example mirrors the paper's Figure 8 code snippet: Party B drives a
// training loop that looks like ordinary ML code, while the MatMul federated
// source layer runs the two-party protocol underneath. Both parties run in
// this process over an in-memory transport; see examples/recommend for the
// same pattern over TCP.
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"

	"blindfl/internal/core"
	"blindfl/internal/data"
	"blindfl/internal/nn"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

func main() {
	short := flag.Bool("short", false, "smoke-test sizes (one epoch, small split) for CI")
	flag.Parse()

	// A small learnable dataset, vertically split: Party A holds 10
	// feature columns, Party B holds the other 10 plus the labels.
	spec := data.Spec{Name: "quickstart", Feats: 20, AvgNNZ: 20, Classes: 2,
		Train: 512, Test: 256, Margin: 4}
	epochs, batch := 4, 64
	if *short {
		spec.Train, spec.Test = 128, 64
		epochs = 1
	}
	ds := data.Generate(spec, 7)

	// Session setup: each party generates a Paillier key pair and they
	// exchange public keys. TestKeys caches 512-bit keys; production
	// deployments generate 2048-bit keys once per pairing.
	skA, skB := protocol.TestKeys()
	pa, pb, err := protocol.Pipe(skA, skB, 7)
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.Config{Out: 1, LR: 0.1, Momentum: 0.9}
	inA, inB := ds.TrainA.NumCols(), ds.TrainB.NumCols()

	var testLogits *tensor.Dense

	err = protocol.RunParties(pa, pb,
		// ---- Party A: contributes features, learns nothing. ----
		func() {
			layer := core.NewMatMulA(pa, cfg, inA, inB)
			for e := 0; e < epochs; e++ {
				for _, idx := range data.BatchIndices(spec.Train, batch) {
					layer.Forward(core.DenseFeatures{M: ds.TrainA.Batch(idx).Dense})
					layer.Backward()
				}
			}
			for _, idx := range data.BatchIndices(spec.Test, batch) {
				layer.Forward(core.DenseFeatures{M: ds.TestA.Batch(idx).Dense})
			}
		},
		// ---- Party B: owns labels and the plaintext top model. ----
		func() {
			layer := core.NewMatMulB(pb, cfg, inA, inB)
			bias := nn.NewBias(1)
			opt := nn.NewSGD(cfg.LR, cfg.Momentum, bias.Params())
			for e := 0; e < epochs; e++ {
				var epochLoss float64
				batches := data.BatchIndices(spec.Train, batch)
				for _, idx := range batches {
					z := layer.Forward(core.DenseFeatures{M: ds.TrainB.Batch(idx).Dense})
					logits := bias.Forward(z)
					loss, grad := nn.BCEWithLogits(logits, gather(ds.TrainY, idx))
					opt.ZeroGrad()
					gradZ := bias.Backward(grad)
					opt.Step()
					layer.Backward(gradZ)
					epochLoss += loss
				}
				fmt.Printf("epoch %d: loss %.4f\n", e+1, epochLoss/float64(len(batches)))
			}
			var all []*tensor.Dense
			for _, idx := range data.BatchIndices(spec.Test, batch) {
				z := layer.Forward(core.DenseFeatures{M: ds.TestB.Batch(idx).Dense})
				all = append(all, bias.Forward(z))
			}
			testLogits = vstack(all)
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("test AUC: %.4f\n", nn.AUC(nn.Scores(testLogits), ds.TestY))
}

func gather(y []int, idx []int) []int {
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = y[j]
	}
	return out
}

func vstack(rows []*tensor.Dense) *tensor.Dense {
	total := 0
	for _, r := range rows {
		total += r.Rows
	}
	out := tensor.NewDense(total, rows[0].Cols)
	off := 0
	for _, r := range rows {
		copy(out.Data[off:off+len(r.Data)], r.Data)
		off += len(r.Data)
	}
	return out
}
