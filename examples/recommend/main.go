// Recommendation over TCP: the paper's e-commerce motivating workload, run
// as two genuinely separate protocol endpoints connected by TCP with gob
// framing — the deployment shape of a real cross-enterprise collaboration
// (each goroutine here would be its own process on its own machine).
//
// An e-commerce company (Party B) holds click labels and its own behaviour
// features; a media platform (Party A) contributes categorical interest
// fields. They train a DLRM-style model without either side revealing
// features, embeddings or labels.
//
//	go run ./examples/recommend
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"

	"blindfl/internal/data"
	"blindfl/internal/model"
	"blindfl/internal/protocol"
	"blindfl/internal/transport"
)

func main() {
	spec := data.Spec{Name: "recommend", Feats: 120, AvgNNZ: 8, Classes: 2,
		Train: 400, Test: 150, CatFields: 6, CatVocab: 24, Margin: 4}
	ds := data.Generate(spec, 13)

	// Wire the two parties through a real TCP connection.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := l.Addr().String()
	fmt.Printf("party B listening on %s\n", addr)

	connBCh := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			log.Fatal(err)
		}
		connBCh <- transport.NewGobConn(c)
	}()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	connA := transport.NewGobConn(c)
	connB := <-connBCh
	l.Close()

	skA, skB := protocol.TestKeys()
	pa := protocol.NewPeer(protocol.PartyA, connA, skA, rand.New(rand.NewSource(13)))
	pb := protocol.NewPeer(protocol.PartyB, connB, skB, rand.New(rand.NewSource(14)))
	done := make(chan error, 1)
	go func() { done <- pa.Handshake() }()
	if err := pb.Handshake(); err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}

	h := model.DefaultHyper()
	h.Epochs = 2
	h.Batch = 64
	h.EmbDim = 4
	h.Hidden = []int{8}

	fmt.Println("training federated DLRM over TCP...")
	fed, err := model.TrainFederated(model.DLRM, ds, h, pa, pb)
	if err != nil {
		log.Fatal(err)
	}

	msgs, bytes := connA.Stats()
	fmt.Printf("click model AUC: %.4f\n", fed.TestMetric)
	fmt.Printf("party A sent %d protocol messages (%.1f MiB) over TCP\n",
		msgs, float64(bytes)/(1<<20))
}
