// Multi-party BlindFL (Algorithm 3 of the paper's appendix): three feature
// parties and one label party train a federated logistic model over a
// k-session protocol.Group — the whole runtime (column split, per-session
// handshakes, concurrent scheduling, activation aggregation, teardown) lives
// behind model.TrainFederatedMulti.
//
//	go run ./examples/multiparty
package main

import (
	"flag"
	"fmt"
	"log"

	"blindfl/internal/data"
	"blindfl/internal/model"
	"blindfl/internal/paillier"
	"blindfl/internal/protocol"
)

func main() {
	short := flag.Bool("short", false, "smoke-test sizes (one epoch, small split) for CI")
	flag.Parse()

	const parties = 3 // feature parties; the label party drives one session each
	spec := data.Spec{Name: "multiparty", Feats: 40, AvgNNZ: 40, Classes: 2,
		Train: 384, Test: 128, Margin: 4}
	h := model.DefaultHyper()
	h.Epochs, h.Batch, h.LR, h.Seed = 3, 64, 0.1, 17
	if *short {
		spec.Train, spec.Test = 128, 64
		h.Epochs = 1
	}
	ds := data.Generate(spec, h.Seed)

	// One key pair per session: every feature party is its own trust domain.
	// The demo reuses the cached test key for all three to skip keygen.
	skA, skB := protocol.TestKeys()
	as, g, err := protocol.GroupPipe([]*paillier.PrivateKey{skA, skA, skA}, skB, h.Seed)
	if err != nil {
		log.Fatal(err)
	}
	hist, err := model.TrainFederatedMulti(model.LR, ds, h, as, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final loss %.4f, test AUC with %d feature parties: %.4f\n",
		hist.Losses[len(hist.Losses)-1], parties, hist.TestMetric)
}
