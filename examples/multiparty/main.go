// Multi-party BlindFL: Algorithm 3 of the paper's appendix with three
// feature-holding Party A's and one label-holding Party B. Each Party A
// runs the unmodified two-party protocol against its own session with B;
// Party B spreads its weight piece across the sessions and sums the partial
// activations.
//
//	go run ./examples/multiparty
package main

import (
	"fmt"
	"log"

	"blindfl/internal/core"
	"blindfl/internal/data"
	"blindfl/internal/nn"
	"blindfl/internal/protocol"
	"blindfl/internal/tensor"
)

const parties = 3 // number of Party A's

func main() {
	// One joint dataset; columns split across three A's and B.
	spec := data.Spec{Name: "multiparty", Feats: 40, AvgNNZ: 40, Classes: 2,
		Train: 384, Test: 128, Margin: 4}
	ds := data.Generate(spec, 17)
	// Re-split Party A's half into three sub-parties.
	colsPer := ds.TrainA.NumCols() / parties
	trainAs := make([]*tensor.Dense, parties)
	testAs := make([]*tensor.Dense, parties)
	inAs := make([]int, parties)
	for i := 0; i < parties; i++ {
		lo := i * colsPer
		hi := lo + colsPer
		if i == parties-1 {
			hi = ds.TrainA.NumCols()
		}
		trainAs[i] = ds.TrainA.Dense.SliceCols(lo, hi)
		testAs[i] = ds.TestA.Dense.SliceCols(lo, hi)
		inAs[i] = hi - lo
	}
	inB := ds.TrainB.NumCols()

	skA, skB := protocol.TestKeys()
	peersA := make([]*protocol.Peer, parties)
	peersB := make([]*protocol.Peer, parties)
	for i := range peersA {
		pa, pb, err := protocol.Pipe(skA, skB, int64(17+i))
		if err != nil {
			log.Fatal(err)
		}
		peersA[i], peersB[i] = pa, pb
	}

	cfg := core.Config{Out: 1, LR: 0.1, Momentum: 0.9}
	const epochs, batch = 3, 64

	done := make(chan error, parties+1)
	// Each Party A runs the plain two-party A-side protocol.
	for i := 0; i < parties; i++ {
		i := i
		go func() {
			done <- peersA[i].Run(func() {
				layer := core.NewMatMulA(peersA[i], core.Config{
					Out: cfg.Out, LR: cfg.LR, Momentum: cfg.Momentum,
					InitScale: 0.1 / parties,
				}, inAs[i], inB)
				for e := 0; e < epochs; e++ {
					for _, idx := range data.BatchIndices(spec.Train, batch) {
						layer.Forward(core.DenseFeatures{M: trainAs[i].GatherRows(idx)})
						layer.Backward()
					}
				}
				for _, idx := range data.BatchIndices(spec.Test, batch) {
					layer.Forward(core.DenseFeatures{M: testAs[i].GatherRows(idx)})
				}
			})
		}()
	}
	// Party B aggregates all sessions.
	var auc float64
	go func() {
		done <- peersB[0].Run(func() {
			layer := core.NewMultiMatMulB(peersB, cfg, inAs, inB)
			bias := nn.NewBias(1)
			opt := nn.NewSGD(cfg.LR, cfg.Momentum, bias.Params())
			for e := 0; e < epochs; e++ {
				var epochLoss float64
				batches := data.BatchIndices(spec.Train, batch)
				for _, idx := range batches {
					z := layer.Forward(core.DenseFeatures{M: ds.TrainB.Batch(idx).Dense})
					loss, grad := nn.BCEWithLogits(bias.Forward(z), gather(ds.TrainY, idx))
					opt.ZeroGrad()
					gradZ := bias.Backward(grad)
					opt.Step()
					layer.Backward(gradZ)
					epochLoss += loss
				}
				fmt.Printf("epoch %d: loss %.4f\n", e+1, epochLoss/float64(len(batches)))
			}
			var scores []float64
			var labels []int
			for _, idx := range data.BatchIndices(spec.Test, batch) {
				z := layer.Forward(core.DenseFeatures{M: ds.TestB.Batch(idx).Dense})
				scores = append(scores, nn.Scores(bias.Forward(z))...)
				labels = append(labels, gather(ds.TestY, idx)...)
			}
			auc = nn.AUC(scores, labels)
		})
	}()
	for i := 0; i < parties+1; i++ {
		if err := <-done; err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("test AUC with %d feature parties: %.4f\n", parties, auc)
}

func gather(y []int, idx []int) []int {
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = y[j]
	}
	return out
}
